//! Shared trace-emission helpers for the SelSync drivers.
//!
//! Both backends — the simulator's round loop and the threaded cluster's rank-0
//! worker — feed the same per-round facts through these helpers, so the structural
//! events (run header, membership changes, fault-window edges) are identical *by
//! construction*: everything here is a pure function of the config's deterministic
//! [`ClusterConditions`] schedule, never of backend state.

use crate::conditions::{ClusterConditions, FaultEvent};
use crate::config::TrainConfig;
use selsync_tracelog::{Event, FaultKind, TraceSink, WindowEdge, TRACE_VERSION};

/// Emit the run header. `algorithm` and `policy` are the same labels both drivers
/// derive from the config (see [`crate::algorithms::selsync::algorithm_label`] and
/// `PolicySpec::label`), so sim and threaded headers agree byte-for-byte.
pub fn emit_header(sink: &TraceSink, cfg: &TrainConfig, algorithm: &str, policy: &str) {
    if !sink.is_enabled() {
        return;
    }
    sink.record(Event::Header {
        version: TRACE_VERSION,
        algorithm: algorithm.to_string(),
        policy: policy.to_string(),
        workers: cfg.workers,
        iterations: cfg.iterations,
        seed: cfg.seed,
    });
}

/// The previous *active* round before `iteration` (the last earlier round with at
/// least one present worker), if any. Rounds where the whole cluster is absent are
/// skipped by both drivers, so consecutive active rounds are the granularity at
/// which membership and fault edges are observable in either backend.
fn previous_active_round(
    conditions: &ClusterConditions,
    workers: usize,
    iteration: usize,
) -> Option<usize> {
    (0..iteration)
        .rev()
        .find(|&p| !conditions.present_workers(workers, p).is_empty())
}

/// Emit the structural events of an active round: the membership change relative to
/// the previous active round (first active round included), and the open/close
/// edges of every non-crash fault window that flipped in between. Crash-driven
/// presence changes surface through the membership event, not as window edges.
pub fn emit_round_context(
    sink: &TraceSink,
    conditions: &ClusterConditions,
    workers: usize,
    iteration: usize,
    present: &[usize],
) {
    if !sink.is_enabled() {
        return;
    }
    let prev_active = previous_active_round(conditions, workers, iteration);
    let prev_present = prev_active
        .map(|p| conditions.present_workers(workers, p))
        .unwrap_or_default();
    let joined: Vec<usize> = present
        .iter()
        .copied()
        .filter(|w| !prev_present.contains(w))
        .collect();
    let left: Vec<usize> = prev_present
        .iter()
        .copied()
        .filter(|w| !present.contains(w))
        .collect();
    if !joined.is_empty() || !left.is_empty() {
        sink.record(Event::Membership {
            round: iteration,
            active: present.to_vec(),
            joined,
            left,
        });
    }
    for fault in &conditions.faults {
        let (kind, worker, start, duration) = match *fault {
            FaultEvent::Slowdown {
                worker,
                start,
                duration,
                ..
            } => (FaultKind::Slowdown, Some(worker), start, duration),
            FaultEvent::BandwidthDegradation {
                start, duration, ..
            } => (FaultKind::Bandwidth, None, start, duration),
            FaultEvent::LatencySpike {
                start, duration, ..
            } => (FaultKind::Latency, None, start, duration),
            FaultEvent::Crash { .. } => continue,
        };
        let in_window = |it: usize| it >= start && it < start.saturating_add(duration);
        let now = in_window(iteration);
        let before = prev_active.map(&in_window).unwrap_or(false);
        let edge = match (before, now) {
            (false, true) => WindowEdge::Open,
            (true, false) => WindowEdge::Close,
            _ => continue,
        };
        sink.record(Event::FaultWindow {
            round: iteration,
            kind,
            edge,
            worker,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_tracelog::TraceGranularity;

    fn churn_conditions() -> ClusterConditions {
        ClusterConditions {
            base_speed: vec![],
            faults: vec![
                FaultEvent::Crash {
                    worker: 1,
                    start: 3,
                    rejoin: Some(6),
                },
                FaultEvent::Slowdown {
                    worker: 0,
                    start: 4,
                    duration: 3,
                    factor: 2.0,
                },
                FaultEvent::BandwidthDegradation {
                    start: 6,
                    duration: 2,
                    factor: 0.5,
                },
            ],
        }
    }

    fn events_for(conditions: &ClusterConditions, workers: usize, rounds: usize) -> Vec<Event> {
        let sink = TraceSink::capture(TraceGranularity::Full);
        for it in 0..rounds {
            let present = conditions.present_workers(workers, it);
            if present.is_empty() {
                continue;
            }
            emit_round_context(&sink, conditions, workers, it, &present);
        }
        sink.take_log().events
    }

    #[test]
    fn membership_events_fire_on_first_round_and_every_change() {
        let conditions = churn_conditions();
        let memberships: Vec<Event> = events_for(&conditions, 3, 10)
            .into_iter()
            .filter(|e| matches!(e, Event::Membership { .. }))
            .collect();
        assert_eq!(
            memberships,
            vec![
                Event::Membership {
                    round: 0,
                    active: vec![0, 1, 2],
                    joined: vec![0, 1, 2],
                    left: vec![],
                },
                Event::Membership {
                    round: 3,
                    active: vec![0, 2],
                    joined: vec![],
                    left: vec![1],
                },
                Event::Membership {
                    round: 6,
                    active: vec![0, 1, 2],
                    joined: vec![1],
                    left: vec![],
                },
            ]
        );
    }

    #[test]
    fn fault_window_edges_cover_non_crash_faults_only() {
        let conditions = churn_conditions();
        let edges: Vec<Event> = events_for(&conditions, 3, 10)
            .into_iter()
            .filter(|e| matches!(e, Event::FaultWindow { .. }))
            .collect();
        assert_eq!(
            edges,
            vec![
                Event::FaultWindow {
                    round: 4,
                    kind: FaultKind::Slowdown,
                    edge: WindowEdge::Open,
                    worker: Some(0),
                },
                Event::FaultWindow {
                    round: 6,
                    kind: FaultKind::Bandwidth,
                    edge: WindowEdge::Open,
                    worker: None,
                },
                Event::FaultWindow {
                    round: 7,
                    kind: FaultKind::Slowdown,
                    edge: WindowEdge::Close,
                    worker: Some(0),
                },
                Event::FaultWindow {
                    round: 8,
                    kind: FaultKind::Bandwidth,
                    edge: WindowEdge::Close,
                    worker: None,
                },
            ]
        );
    }

    #[test]
    fn disabled_sink_short_circuits() {
        let sink = TraceSink::disabled();
        emit_round_context(&sink, &churn_conditions(), 3, 0, &[0, 1, 2]);
        assert!(sink.take_log().events.is_empty());
    }
}

//! The δ-threshold decision rule (§III-B, Fig. 6 of the paper).
//!
//! A worker wants to synchronize when its relative gradient change `Δ(g_i)` is at least
//! `δ`; the *cluster* synchronizes when **any** worker wants to (the decision is shared
//! through a 1-bit-per-worker all-gather). `δ = 0` degenerates to BSP (every step
//! synchronizes); `δ ≥ max Δ(g_i)` degenerates to pure local-SGD.

use serde::{Deserialize, Serialize};

/// Outcome of the per-step decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncDecision {
    /// Aggregate updates across all workers this step.
    Synchronize,
    /// Apply updates locally only.
    Local,
}

/// The δ rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncPolicy {
    /// Relative-gradient-change threshold. `0` = BSP, large = local-SGD.
    pub delta: f32,
}

impl SyncPolicy {
    /// Create a policy with threshold `delta` (must be non-negative and finite).
    pub fn new(delta: f32) -> Self {
        assert!(
            delta >= 0.0 && delta.is_finite(),
            "delta must be a finite non-negative number"
        );
        SyncPolicy { delta }
    }

    /// Pure-BSP policy (synchronize every step).
    pub fn bsp() -> Self {
        SyncPolicy { delta: 0.0 }
    }

    /// Whether a single worker with relative gradient change `delta_g` wants to
    /// synchronize (Alg. 1, line 10).
    pub fn worker_wants_sync(&self, delta_g: f32) -> bool {
        delta_g >= self.delta
    }

    /// Cluster-level decision given every worker's wish bit (the flags array after the
    /// all-gather, Alg. 1, line 13): synchronize if any bit is set.
    pub fn decide(&self, flags: &[bool]) -> SyncDecision {
        if flags.iter().any(|&f| f) {
            SyncDecision::Synchronize
        } else {
            SyncDecision::Local
        }
    }

    /// Convenience: per-worker wish bits from per-worker `Δ(g_i)` values.
    pub fn flags_from_deltas(&self, deltas: &[f32]) -> Vec<bool> {
        deltas.iter().map(|&d| self.worker_wants_sync(d)).collect()
    }

    /// One-shot cluster decision straight from the per-worker deltas.
    pub fn decide_from_deltas(&self, deltas: &[f32]) -> SyncDecision {
        self.decide(&self.flags_from_deltas(deltas))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delta_is_bsp() {
        let p = SyncPolicy::bsp();
        // Every Δ(g_i) ≥ 0, so every step synchronizes.
        assert_eq!(
            p.decide_from_deltas(&[0.0, 0.0, 0.0]),
            SyncDecision::Synchronize
        );
        assert_eq!(p.decide_from_deltas(&[0.001]), SyncDecision::Synchronize);
    }

    #[test]
    fn huge_delta_is_local_sgd() {
        let p = SyncPolicy::new(1e9);
        assert_eq!(
            p.decide_from_deltas(&[0.5, 3.0, 100.0]),
            SyncDecision::Local
        );
    }

    #[test]
    fn any_single_worker_forces_synchronization() {
        let p = SyncPolicy::new(0.25);
        assert_eq!(
            p.decide_from_deltas(&[0.1, 0.1, 0.3, 0.05]),
            SyncDecision::Synchronize
        );
        assert_eq!(
            p.decide_from_deltas(&[0.1, 0.1, 0.2, 0.05]),
            SyncDecision::Local
        );
    }

    #[test]
    fn threshold_is_inclusive() {
        let p = SyncPolicy::new(0.25);
        assert!(p.worker_wants_sync(0.25));
        assert!(!p.worker_wants_sync(0.2499));
    }

    #[test]
    fn flags_map_one_to_one() {
        let p = SyncPolicy::new(0.5);
        assert_eq!(
            p.flags_from_deltas(&[0.4, 0.6, 0.5]),
            vec![false, true, true]
        );
    }

    #[test]
    fn monotonicity_in_delta() {
        // Raising δ can only turn Synchronize decisions into Local ones, never the reverse.
        let deltas = [0.1f32, 0.35, 0.2];
        let mut last_sync = true;
        for &d in &[0.0f32, 0.2, 0.3, 0.4, 1.0] {
            let sync = SyncPolicy::new(d).decide_from_deltas(&deltas) == SyncDecision::Synchronize;
            assert!(
                !sync || last_sync,
                "sync decisions must be monotone non-increasing in delta"
            );
            last_sync = sync;
        }
    }

    #[test]
    #[should_panic]
    fn negative_delta_rejected() {
        let _ = SyncPolicy::new(-0.1);
    }
}

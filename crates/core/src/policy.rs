//! The δ-threshold decision rule (§III-B, Fig. 6 of the paper), plus δ *policies* that
//! choose the threshold itself.
//!
//! A worker wants to synchronize when its relative gradient change `Δ(g_i)` is at least
//! `δ`; the *cluster* synchronizes when **any** worker wants to (the decision is shared
//! through a 1-bit-per-worker all-gather). `δ = 0` degenerates to BSP (every step
//! synchronizes); `δ ≥ max Δ(g_i)` degenerates to pure local-SGD.
//!
//! The paper studies *fixed* δ. The [`DeltaPolicy`] trait generalises the knob: a
//! policy is asked for the δ in effect before each round and observes the completed
//! round's signals afterwards, so δ can follow a schedule or — in the spirit of
//! Sync-Switch (arXiv:2104.08364) — *switch* in response to observed training dynamics.
//! Every policy is a pure function of the (deterministic) observed signals, so runs
//! stay bit-for-bit reproducible.

use selsync_metrics::Ewma;
use serde::{Deserialize, Serialize};

/// Outcome of the per-step decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncDecision {
    /// Aggregate updates across all workers this step.
    Synchronize,
    /// Apply updates locally only.
    Local,
}

/// The δ rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncPolicy {
    /// Relative-gradient-change threshold. `0` = BSP, large = local-SGD.
    pub delta: f32,
}

impl SyncPolicy {
    /// Create a policy with threshold `delta` (must be non-negative and finite).
    pub fn new(delta: f32) -> Self {
        assert!(
            delta >= 0.0 && delta.is_finite(),
            "delta must be a finite non-negative number"
        );
        SyncPolicy { delta }
    }

    /// Pure-BSP policy (synchronize every step).
    pub fn bsp() -> Self {
        SyncPolicy { delta: 0.0 }
    }

    /// Whether a single worker with relative gradient change `delta_g` wants to
    /// synchronize (Alg. 1, line 10).
    pub fn worker_wants_sync(&self, delta_g: f32) -> bool {
        delta_g >= self.delta
    }

    /// Cluster-level decision given every worker's wish bit (the flags array after the
    /// all-gather, Alg. 1, line 13): synchronize if any bit is set.
    pub fn decide(&self, flags: &[bool]) -> SyncDecision {
        if flags.iter().any(|&f| f) {
            SyncDecision::Synchronize
        } else {
            SyncDecision::Local
        }
    }

    /// Convenience: per-worker wish bits from per-worker `Δ(g_i)` values.
    pub fn flags_from_deltas(&self, deltas: &[f32]) -> Vec<bool> {
        deltas.iter().map(|&d| self.worker_wants_sync(d)).collect()
    }

    /// One-shot cluster decision straight from the per-worker deltas.
    pub fn decide_from_deltas(&self, deltas: &[f32]) -> SyncDecision {
        self.decide(&self.flags_from_deltas(deltas))
    }
}

// ---------------------------------------------------------------------------
// δ policies: who chooses the threshold, and when.
// ---------------------------------------------------------------------------

/// Observed signals of one completed training round, fed back to a [`DeltaPolicy`].
///
/// The signals are cluster-level in both backends: the round-maximum `Δ(g_i)` and the
/// mean batch loss over the round's steps. The simulator merges them in worker order
/// ([`crate::sim::RoundOutput::signal`]); the threaded driver computes the identical
/// aggregates through the elastic scalar all-reduce accompanying the 1-bit status
/// exchange (`selsync_comm::Collective::allreduce_scalar_among`) and feeds them to its
/// single shared policy instance, so both backends' policies observe the same stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundSignal {
    /// Training iteration the round ran at.
    pub iteration: usize,
    /// Maximum `Δ(g_i)` observed across the round's present workers.
    pub max_delta: f32,
    /// Mean training loss of the round's steps.
    pub mean_loss: f32,
    /// Mean `Δ(g_i)` across the round's present workers (first moment of the
    /// per-worker signal feed; with [`Self::delta_sq_mean`] it gives the cluster
    /// Δ variance, `E[Δ²] − E[Δ]²`).
    pub delta_mean: f32,
    /// Mean `Δ(g_i)²` across the round's present workers (second moment of the
    /// per-worker signal feed).
    pub delta_sq_mean: f32,
    /// Whether the round synchronized.
    pub synced: bool,
}

impl RoundSignal {
    /// Population variance of the round's per-worker `Δ(g_i)` (clamped at zero
    /// against f32 cancellation).
    pub fn delta_variance(&self) -> f32 {
        (self.delta_sq_mean - self.delta_mean * self.delta_mean).max(0.0)
    }
}

/// Record of one regime switch made by an adaptive policy, with the detector state
/// that triggered it (the values the trace layer reports alongside the switch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchRecord {
    /// The regime switched *to*: `true` = exploit (relaxed δ), `false` = explore.
    pub exploit: bool,
    /// The smoothed loss at the moment of the switch.
    pub loss_ewma: f32,
    /// The `Δ(g)` baseline the decision compared against: for a spike-triggered
    /// switch, the pre-update EWMA the raw `Δ(g)` was measured as a multiple of;
    /// for a settle-triggered switch, the current `Δ(g)` EWMA.
    pub delta_ewma: f32,
}

/// The checkpointable portion of a [`DeltaPolicy`], flattened into two typed arrays
/// (what the checkpoint codec stores as one section). Stateless policies use the
/// empty default; each stateful policy defines its own packing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PolicyState {
    /// Counters, flags and switch rounds.
    pub ints: Vec<u64>,
    /// EWMA histories and smoothed values.
    pub floats: Vec<f32>,
}

/// A runtime rule choosing the δ threshold round by round.
///
/// [`Self::delta`] is consulted *before* a round runs (it decides this round's
/// threshold); [`Self::observe`] is called *after* the round with its signals. A policy
/// must be a deterministic function of the observed signal sequence — drivers rely on
/// this for their cross-thread-count byte-identity guarantee.
pub trait DeltaPolicy: Send {
    /// The δ in effect for the round at `iteration`.
    fn delta(&self, iteration: usize) -> f32;

    /// Ingest the signals of the completed round at `signal.iteration`.
    fn observe(&mut self, signal: &RoundSignal);

    /// Short label used in report algorithm names (e.g. `d=0.3`, `adaptive(0..0.5)`).
    fn label(&self) -> String;

    /// The regime switch triggered by the most recent [`Self::observe`] call, if
    /// any. Stateless policies never switch; adaptive policies report the switch
    /// exactly once (the next `observe` clears it).
    fn last_switch(&self) -> Option<SwitchRecord> {
        None
    }

    /// The rounds at which the policy has switched regimes so far, in order.
    fn switch_rounds(&self) -> &[usize] {
        &[]
    }

    /// Capture the policy's mutable state for a checkpoint. Stateless policies
    /// (pure functions of the iteration) return the empty default.
    fn export_state(&self) -> PolicyState {
        PolicyState::default()
    }

    /// Restore state captured by [`Self::export_state`] onto a same-configured
    /// policy. The one-shot [`Self::last_switch`] record is not restored: its trace
    /// event was already emitted before the checkpoint was written.
    fn import_state(&mut self, state: &PolicyState) {
        assert!(
            state.ints.is_empty() && state.floats.is_empty(),
            "stateless policy cannot import non-empty state"
        );
    }
}

/// Append an EWMA's mutable state (presence flag + smoothed value + history) to a
/// [`PolicyState`] being built.
fn pack_ewma(ewma: &Ewma, state: &mut PolicyState) {
    let (history, smoothed) = ewma.state();
    state.ints.push(u64::from(smoothed.is_some()));
    state.floats.push(smoothed.unwrap_or(0.0));
    state.ints.push(history.len() as u64);
    state.floats.extend(history);
}

/// Consume one EWMA's state (as written by [`pack_ewma`]) from the cursors.
fn unpack_ewma(
    ewma: &mut Ewma,
    ints: &mut impl Iterator<Item = u64>,
    floats: &mut impl Iterator<Item = f32>,
    what: &str,
) {
    let has = ints
        .next()
        .unwrap_or_else(|| panic!("{what} EWMA state: missing presence flag"))
        != 0;
    let smoothed = floats
        .next()
        .unwrap_or_else(|| panic!("{what} EWMA state: missing smoothed value"));
    let n = ints
        .next()
        .unwrap_or_else(|| panic!("{what} EWMA state: missing history length"))
        as usize;
    let history: Vec<f32> = floats.by_ref().take(n).collect();
    assert_eq!(history.len(), n, "{what} EWMA state: truncated history");
    ewma.restore(&history, has.then_some(smoothed));
}

/// The paper's fixed threshold as a [`DeltaPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedDelta {
    /// The constant threshold.
    pub delta: f32,
}

impl DeltaPolicy for FixedDelta {
    fn delta(&self, _iteration: usize) -> f32 {
        self.delta
    }

    fn observe(&mut self, _signal: &RoundSignal) {}

    fn label(&self) -> String {
        format!("d={}", self.delta)
    }
}

/// An iteration-keyed δ schedule: stage `i` applies from iteration `starts[i]` until
/// the next stage begins. A pure function of the iteration, so every consumer agrees
/// on every threshold without coordination.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledDelta {
    starts: Vec<usize>,
    deltas: Vec<f32>,
}

impl ScheduledDelta {
    /// Build from parallel `starts`/`deltas` arrays (validated: non-empty, equal
    /// length, `starts[0] == 0`, strictly increasing, finite non-negative deltas).
    pub fn new(starts: Vec<usize>, deltas: Vec<f32>) -> Self {
        PolicySpec::Schedule {
            starts: starts.clone(),
            deltas: deltas.clone(),
        }
        .validate()
        .expect("invalid δ schedule");
        ScheduledDelta { starts, deltas }
    }
}

impl DeltaPolicy for ScheduledDelta {
    fn delta(&self, iteration: usize) -> f32 {
        let stage = self
            .starts
            .iter()
            .rposition(|&s| s <= iteration)
            .expect("starts[0] == 0 guarantees a stage");
        self.deltas[stage]
    }

    fn observe(&mut self, _signal: &RoundSignal) {}

    fn label(&self) -> String {
        let stages: Vec<String> = self
            .starts
            .iter()
            .zip(self.deltas.iter())
            .map(|(s, d)| format!("{s}:{d}"))
            .collect();
        format!("schedule({})", stages.join(","))
    }
}

/// A Sync-Switch-style adaptive policy: synchronize eagerly while training dynamics
/// are volatile, relax the threshold once they settle, and fall back to eager
/// synchronization when a cluster event (a rejoining worker, a learning-rate decay)
/// disturbs them again.
///
/// Two deterministic signals drive the switching, both smoothed with
/// [`selsync_metrics::Ewma`]:
///
/// * the **loss EWMA** decides *settling*: after `warmup` rounds, once the smoothed
///   training loss improves by less than `settle` (relative, per round) for `patience`
///   consecutive rounds, δ switches from `delta_explore` (small: sync-eager) to
///   `delta_exploit` (large: mostly local). The initial descent — where the paper
///   shows synchronization matters most — is always synchronized.
/// * the **`Δ(g)` ratio** decides *spiking*: a raw round `Δ(g)` at least `spike` times
///   its own EWMA (a rejoining worker's restarted tracker, an LR-decay kink) switches
///   back to `delta_explore`; the settle detector then re-relaxes once the loss EWMA
///   is calm again. Self-normalising, so the same `spike` works across workloads whose
///   absolute `Δ(g)` scales differ.
#[derive(Debug, Clone)]
pub struct AdaptiveDelta {
    delta_explore: f32,
    delta_exploit: f32,
    warmup: usize,
    settle: f32,
    patience: usize,
    spike: f32,
    loss: Ewma,
    delta_signal: Ewma,
    rounds: usize,
    calm: usize,
    exploiting: bool,
    switches: u32,
    switch_rounds: Vec<usize>,
    last_switch: Option<SwitchRecord>,
}

impl AdaptiveDelta {
    /// Build from a validated [`PolicySpec::Adaptive`] configuration.
    pub fn from_spec(spec: &PolicySpec) -> Self {
        spec.validate().expect("invalid adaptive-δ configuration");
        match *spec {
            PolicySpec::Adaptive {
                delta_explore,
                delta_exploit,
                factor,
                warmup,
                settle,
                patience,
                spike,
            } => AdaptiveDelta {
                delta_explore,
                delta_exploit,
                warmup,
                settle,
                patience,
                spike,
                loss: Ewma::new(factor, 25),
                delta_signal: Ewma::new(factor, 25),
                rounds: 0,
                calm: 0,
                exploiting: false,
                switches: 0,
                switch_rounds: Vec::new(),
                last_switch: None,
            },
            _ => panic!("AdaptiveDelta::from_spec needs PolicySpec::Adaptive"),
        }
    }

    /// Whether the policy is currently in the relaxed (exploit) regime.
    pub fn exploiting(&self) -> bool {
        self.exploiting
    }

    /// Number of regime switches so far.
    pub fn switches(&self) -> u32 {
        self.switches
    }
}

impl DeltaPolicy for AdaptiveDelta {
    fn delta(&self, _iteration: usize) -> f32 {
        if self.exploiting {
            self.delta_exploit
        } else {
            self.delta_explore
        }
    }

    fn observe(&mut self, signal: &RoundSignal) {
        self.rounds += 1;
        self.last_switch = None;
        let prev_loss = self.loss.value();
        let smoothed_loss = self.loss.update(signal.mean_loss);
        let prev_delta = self.delta_signal.value();
        self.delta_signal.update(signal.max_delta);

        if self.exploiting {
            // Spike detector: a raw Δ(g) far above its own running level means the
            // cluster's dynamics changed (rejoin, LR decay) — synchronize eagerly
            // until the loss settles again.
            if let Some(base) = prev_delta {
                if base > 0.0 && signal.max_delta >= self.spike * base {
                    self.exploiting = false;
                    self.calm = 0;
                    self.switches += 1;
                    self.switch_rounds.push(signal.iteration);
                    self.last_switch = Some(SwitchRecord {
                        exploit: false,
                        loss_ewma: smoothed_loss,
                        delta_ewma: base,
                    });
                }
            }
            return;
        }
        // Settle detector (active only after the warmup, once the EWMA is meaningful):
        // count consecutive rounds whose smoothed-loss improvement is below `settle`.
        if self.rounds <= self.warmup {
            return;
        }
        let improvement = match prev_loss {
            Some(prev) if prev.abs() > f32::EPSILON => (prev - smoothed_loss) / prev,
            _ => 0.0,
        };
        // Calm means *plateaued*: neither improving nor regressing faster than
        // `settle` per round. A loss rising beyond the threshold is volatility, not
        // settling — it must keep the eager regime.
        if improvement.abs() < self.settle {
            self.calm += 1;
        } else {
            self.calm = 0;
        }
        if self.calm >= self.patience {
            self.exploiting = true;
            self.calm = 0;
            self.switches += 1;
            self.switch_rounds.push(signal.iteration);
            self.last_switch = Some(SwitchRecord {
                exploit: true,
                loss_ewma: smoothed_loss,
                delta_ewma: self.delta_signal.value().unwrap_or(0.0),
            });
        }
    }

    fn label(&self) -> String {
        format!(
            "adaptive({}->{},warmup={},settle={}x{},spike={})",
            self.delta_explore,
            self.delta_exploit,
            self.warmup,
            self.settle,
            self.patience,
            self.spike
        )
    }

    fn last_switch(&self) -> Option<SwitchRecord> {
        self.last_switch
    }

    fn switch_rounds(&self) -> &[usize] {
        &self.switch_rounds
    }

    fn export_state(&self) -> PolicyState {
        let mut state = PolicyState::default();
        state.ints.push(u64::from(self.exploiting));
        state.ints.push(self.rounds as u64);
        state.ints.push(self.calm as u64);
        state.ints.push(u64::from(self.switches));
        pack_ewma(&self.loss, &mut state);
        pack_ewma(&self.delta_signal, &mut state);
        state.ints.push(self.switch_rounds.len() as u64);
        state
            .ints
            .extend(self.switch_rounds.iter().map(|&r| r as u64));
        state
    }

    fn import_state(&mut self, state: &PolicyState) {
        let mut ints = state.ints.iter().copied();
        let mut floats = state.floats.iter().copied();
        self.exploiting = ints.next().expect("adaptive state: exploiting") != 0;
        self.rounds = ints.next().expect("adaptive state: rounds") as usize;
        self.calm = ints.next().expect("adaptive state: calm") as usize;
        self.switches = ints.next().expect("adaptive state: switches") as u32;
        unpack_ewma(&mut self.loss, &mut ints, &mut floats, "adaptive loss");
        unpack_ewma(
            &mut self.delta_signal,
            &mut ints,
            &mut floats,
            "adaptive Δ(g)",
        );
        let n = ints.next().expect("adaptive state: switch-round count") as usize;
        self.switch_rounds = ints.by_ref().take(n).map(|r| r as usize).collect();
        assert_eq!(
            self.switch_rounds.len(),
            n,
            "adaptive state: truncated switch rounds"
        );
        self.last_switch = None;
    }
}

/// A variance-gated variant of [`AdaptiveDelta`]: the settle detector (loss-EWMA
/// plateau) is identical, but the *re-entry* trigger watches the cluster-level
/// **variance of the per-worker `Δ(g_i)`** ([`RoundSignal::delta_variance`]) instead
/// of the round-maximum's ratio to its own EWMA.
///
/// Rationale: a single worker's restarted tracker or a straggling shard shows up as
/// per-worker *disagreement* (variance) well before it moves the round maximum's
/// smoothed level, so the variance gate re-synchronizes earlier on localized
/// disturbances while ignoring cluster-wide level shifts that affect every worker
/// equally (e.g. an LR decay moving all `Δ(g_i)` together keeps variance low).
#[derive(Debug, Clone)]
pub struct VarianceDelta {
    delta_explore: f32,
    delta_exploit: f32,
    warmup: usize,
    settle: f32,
    patience: usize,
    var_ratio: f32,
    loss: Ewma,
    var_signal: Ewma,
    rounds: usize,
    calm: usize,
    exploiting: bool,
    switches: u32,
    switch_rounds: Vec<usize>,
    last_switch: Option<SwitchRecord>,
}

impl VarianceDelta {
    /// Build from a validated [`PolicySpec::Variance`] configuration.
    pub fn from_spec(spec: &PolicySpec) -> Self {
        spec.validate().expect("invalid variance-δ configuration");
        match *spec {
            PolicySpec::Variance {
                delta_explore,
                delta_exploit,
                factor,
                warmup,
                settle,
                patience,
                var_ratio,
            } => VarianceDelta {
                delta_explore,
                delta_exploit,
                warmup,
                settle,
                patience,
                var_ratio,
                loss: Ewma::new(factor, 25),
                var_signal: Ewma::new(factor, 25),
                rounds: 0,
                calm: 0,
                exploiting: false,
                switches: 0,
                switch_rounds: Vec::new(),
                last_switch: None,
            },
            _ => panic!("VarianceDelta::from_spec needs PolicySpec::Variance"),
        }
    }

    /// Whether the policy is currently in the relaxed (exploit) regime.
    pub fn exploiting(&self) -> bool {
        self.exploiting
    }

    /// Number of regime switches so far.
    pub fn switches(&self) -> u32 {
        self.switches
    }
}

impl DeltaPolicy for VarianceDelta {
    fn delta(&self, _iteration: usize) -> f32 {
        if self.exploiting {
            self.delta_exploit
        } else {
            self.delta_explore
        }
    }

    fn observe(&mut self, signal: &RoundSignal) {
        self.rounds += 1;
        self.last_switch = None;
        let prev_loss = self.loss.value();
        let smoothed_loss = self.loss.update(signal.mean_loss);
        let variance = signal.delta_variance();
        let prev_var = self.var_signal.value();
        self.var_signal.update(variance);

        if self.exploiting {
            // Variance gate: per-worker Δ(g) disagreement blowing past its running
            // level means one part of the cluster's dynamics changed — re-enter the
            // eager regime until the loss settles again.
            if let Some(base) = prev_var {
                if base > 0.0 && variance >= self.var_ratio * base {
                    self.exploiting = false;
                    self.calm = 0;
                    self.switches += 1;
                    self.switch_rounds.push(signal.iteration);
                    self.last_switch = Some(SwitchRecord {
                        exploit: false,
                        loss_ewma: smoothed_loss,
                        // The baseline the variance was measured as a multiple of.
                        delta_ewma: base,
                    });
                }
            }
            return;
        }
        if self.rounds <= self.warmup {
            return;
        }
        let improvement = match prev_loss {
            Some(prev) if prev.abs() > f32::EPSILON => (prev - smoothed_loss) / prev,
            _ => 0.0,
        };
        if improvement.abs() < self.settle {
            self.calm += 1;
        } else {
            self.calm = 0;
        }
        if self.calm >= self.patience {
            self.exploiting = true;
            self.calm = 0;
            self.switches += 1;
            self.switch_rounds.push(signal.iteration);
            self.last_switch = Some(SwitchRecord {
                exploit: true,
                loss_ewma: smoothed_loss,
                delta_ewma: self.var_signal.value().unwrap_or(0.0),
            });
        }
    }

    fn label(&self) -> String {
        format!(
            "variance({}->{},warmup={},settle={}x{},var={})",
            self.delta_explore,
            self.delta_exploit,
            self.warmup,
            self.settle,
            self.patience,
            self.var_ratio
        )
    }

    fn last_switch(&self) -> Option<SwitchRecord> {
        self.last_switch
    }

    fn switch_rounds(&self) -> &[usize] {
        &self.switch_rounds
    }

    fn export_state(&self) -> PolicyState {
        let mut state = PolicyState::default();
        state.ints.push(u64::from(self.exploiting));
        state.ints.push(self.rounds as u64);
        state.ints.push(self.calm as u64);
        state.ints.push(u64::from(self.switches));
        pack_ewma(&self.loss, &mut state);
        pack_ewma(&self.var_signal, &mut state);
        state.ints.push(self.switch_rounds.len() as u64);
        state
            .ints
            .extend(self.switch_rounds.iter().map(|&r| r as u64));
        state
    }

    fn import_state(&mut self, state: &PolicyState) {
        let mut ints = state.ints.iter().copied();
        let mut floats = state.floats.iter().copied();
        self.exploiting = ints.next().expect("variance state: exploiting") != 0;
        self.rounds = ints.next().expect("variance state: rounds") as usize;
        self.calm = ints.next().expect("variance state: calm") as usize;
        self.switches = ints.next().expect("variance state: switches") as u32;
        unpack_ewma(&mut self.loss, &mut ints, &mut floats, "variance loss");
        unpack_ewma(
            &mut self.var_signal,
            &mut ints,
            &mut floats,
            "variance Δ-var",
        );
        let n = ints.next().expect("variance state: switch-round count") as usize;
        self.switch_rounds = ints.by_ref().take(n).map(|r| r as usize).collect();
        assert_eq!(
            self.switch_rounds.len(),
            n,
            "variance state: truncated switch rounds"
        );
        self.last_switch = None;
    }
}

/// Serializable δ-policy configuration — what scenario files and [`crate::config::TrainConfig`]
/// carry; [`Self::build`] instantiates the runtime [`DeltaPolicy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// A fixed threshold (the paper's knob).
    Fixed {
        /// The constant threshold.
        delta: f32,
    },
    /// An iteration-keyed schedule: stage `i` applies from `starts[i]` until the next
    /// stage begins (`starts[0]` must be 0).
    Schedule {
        /// First iteration of each stage (strictly increasing, starting at 0).
        starts: Vec<usize>,
        /// The δ of each stage.
        deltas: Vec<f32>,
    },
    /// The Sync-Switch-style adaptive policy ([`AdaptiveDelta`]).
    Adaptive {
        /// Sync-eager threshold used while training dynamics are volatile.
        delta_explore: f32,
        /// Relaxed threshold used once the loss has settled.
        delta_exploit: f32,
        /// EWMA smoothing factor for the watched loss / `Δ(g)` signals, in `(0, 1]`.
        factor: f32,
        /// Rounds the policy always stays eager before the settle detector arms.
        warmup: usize,
        /// Calm means the smoothed loss improves by less than this (relative, per
        /// round).
        settle: f32,
        /// Consecutive calm rounds required before switching to exploit.
        patience: usize,
        /// A raw round `Δ(g)` at least `spike` times its own EWMA switches back to
        /// the eager regime.
        spike: f32,
    },
    /// The variance-gated adaptive policy ([`VarianceDelta`]): same settle detector,
    /// but re-entry watches the per-worker `Δ(g)` variance instead of the maximum.
    Variance {
        /// Sync-eager threshold used while training dynamics are volatile.
        delta_explore: f32,
        /// Relaxed threshold used once the loss has settled.
        delta_exploit: f32,
        /// EWMA smoothing factor for the watched loss / Δ-variance signals, in `(0, 1]`.
        factor: f32,
        /// Rounds the policy always stays eager before the settle detector arms.
        warmup: usize,
        /// Calm means the smoothed loss improves by less than this (relative, per
        /// round).
        settle: f32,
        /// Consecutive calm rounds required before switching to exploit.
        patience: usize,
        /// A round's per-worker `Δ(g)` variance at least `var_ratio` times its own
        /// EWMA switches back to the eager regime.
        var_ratio: f32,
    },
}

impl PolicySpec {
    /// The default adaptive configuration: sync every step (δ = 0) through the
    /// initial descent, relax to δ = 0.5 once the smoothed loss changes by < 5% per
    /// round for 4 consecutive rounds (earliest: round 9), and re-enter the eager
    /// regime whenever a round's `Δ(g)` jumps to ≥ 2.5× its running level. The
    /// smoothing factor (0.15) is deliberately heavier than the settle band so
    /// batch-to-batch loss noise does not masquerade as volatility.
    pub fn adaptive_default() -> Self {
        PolicySpec::Adaptive {
            delta_explore: 0.0,
            delta_exploit: 0.5,
            factor: 0.15,
            warmup: 8,
            settle: 0.05,
            patience: 4,
            spike: 2.5,
        }
    }

    /// The default variance-gated configuration: same regimes and settle band as
    /// [`Self::adaptive_default`], re-entering the eager regime when a round's
    /// per-worker `Δ(g)` variance reaches 4× its running level. The ratio is higher
    /// than the adaptive `spike` because variance (a second moment) moves
    /// quadratically with the disturbance.
    pub fn variance_default() -> Self {
        PolicySpec::Variance {
            delta_explore: 0.0,
            delta_exploit: 0.5,
            factor: 0.15,
            warmup: 8,
            settle: 0.05,
            patience: 4,
            var_ratio: 4.0,
        }
    }

    /// Check internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        let finite_delta = |d: f32, what: &str| {
            if d >= 0.0 && d.is_finite() {
                Ok(())
            } else {
                Err(format!("{what} must be a finite non-negative number"))
            }
        };
        match self {
            PolicySpec::Fixed { delta } => finite_delta(*delta, "policy delta"),
            PolicySpec::Schedule { starts, deltas } => {
                if starts.is_empty() || starts.len() != deltas.len() {
                    return Err("schedule needs equal, non-empty starts/deltas".into());
                }
                if starts[0] != 0 {
                    return Err("schedule must start at iteration 0".into());
                }
                if !starts.windows(2).all(|w| w[0] < w[1]) {
                    return Err("schedule starts must be strictly increasing".into());
                }
                for &d in deltas {
                    finite_delta(d, "schedule delta")?;
                }
                Ok(())
            }
            PolicySpec::Adaptive {
                delta_explore,
                delta_exploit,
                factor,
                warmup: _,
                settle,
                patience,
                spike,
            } => {
                finite_delta(*delta_explore, "delta_explore")?;
                finite_delta(*delta_exploit, "delta_exploit")?;
                if !(*factor > 0.0 && *factor <= 1.0) {
                    return Err("adaptive factor must be in (0, 1]".into());
                }
                if *patience == 0 {
                    return Err("adaptive patience must be at least 1".into());
                }
                if !(*settle > 0.0 && settle.is_finite()) {
                    return Err("settle must be a finite positive number".into());
                }
                if !(*spike > 1.0 && spike.is_finite()) {
                    return Err("spike must be a finite ratio above 1".into());
                }
                Ok(())
            }
            PolicySpec::Variance {
                delta_explore,
                delta_exploit,
                factor,
                warmup: _,
                settle,
                patience,
                var_ratio,
            } => {
                finite_delta(*delta_explore, "delta_explore")?;
                finite_delta(*delta_exploit, "delta_exploit")?;
                if !(*factor > 0.0 && *factor <= 1.0) {
                    return Err("variance factor must be in (0, 1]".into());
                }
                if *patience == 0 {
                    return Err("variance patience must be at least 1".into());
                }
                if !(*settle > 0.0 && settle.is_finite()) {
                    return Err("settle must be a finite positive number".into());
                }
                if !(*var_ratio > 1.0 && var_ratio.is_finite()) {
                    return Err("var_ratio must be a finite ratio above 1".into());
                }
                Ok(())
            }
        }
    }

    /// Instantiate the runtime policy. Panics on an invalid spec (use
    /// [`Self::validate`] first at trust boundaries).
    pub fn build(&self) -> Box<dyn DeltaPolicy> {
        self.validate().expect("invalid δ-policy configuration");
        match self {
            PolicySpec::Fixed { delta } => Box::new(FixedDelta { delta: *delta }),
            PolicySpec::Schedule { starts, deltas } => {
                Box::new(ScheduledDelta::new(starts.clone(), deltas.clone()))
            }
            PolicySpec::Adaptive { .. } => Box::new(AdaptiveDelta::from_spec(self)),
            PolicySpec::Variance { .. } => Box::new(VarianceDelta::from_spec(self)),
        }
    }

    /// Whether the built policy actually *consumes* the observed [`RoundSignal`]s —
    /// i.e. its thresholds depend on training dynamics, not just the iteration.
    /// Fixed and scheduled policies are pure functions of the iteration and discard
    /// observations; drivers may use this to skip the cluster-signal exchange that
    /// would otherwise feed them.
    pub fn consumes_round_signals(&self) -> bool {
        matches!(
            self,
            PolicySpec::Adaptive { .. } | PolicySpec::Variance { .. }
        )
    }

    /// The label the built policy reports (stable: used in report algorithm names).
    /// Formats directly — no runtime policy is constructed; pinned equal to
    /// `build().label()` by a unit test.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Fixed { delta } => format!("d={delta}"),
            PolicySpec::Schedule { starts, deltas } => {
                let stages: Vec<String> = starts
                    .iter()
                    .zip(deltas.iter())
                    .map(|(s, d)| format!("{s}:{d}"))
                    .collect();
                format!("schedule({})", stages.join(","))
            }
            PolicySpec::Adaptive {
                delta_explore,
                delta_exploit,
                warmup,
                settle,
                patience,
                spike,
                ..
            } => format!(
                "adaptive({delta_explore}->{delta_exploit},warmup={warmup},settle={settle}x{patience},spike={spike})"
            ),
            PolicySpec::Variance {
                delta_explore,
                delta_exploit,
                warmup,
                settle,
                patience,
                var_ratio,
                ..
            } => format!(
                "variance({delta_explore}->{delta_exploit},warmup={warmup},settle={settle}x{patience},var={var_ratio})"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delta_is_bsp() {
        let p = SyncPolicy::bsp();
        // Every Δ(g_i) ≥ 0, so every step synchronizes.
        assert_eq!(
            p.decide_from_deltas(&[0.0, 0.0, 0.0]),
            SyncDecision::Synchronize
        );
        assert_eq!(p.decide_from_deltas(&[0.001]), SyncDecision::Synchronize);
    }

    #[test]
    fn huge_delta_is_local_sgd() {
        let p = SyncPolicy::new(1e9);
        assert_eq!(
            p.decide_from_deltas(&[0.5, 3.0, 100.0]),
            SyncDecision::Local
        );
    }

    #[test]
    fn any_single_worker_forces_synchronization() {
        let p = SyncPolicy::new(0.25);
        assert_eq!(
            p.decide_from_deltas(&[0.1, 0.1, 0.3, 0.05]),
            SyncDecision::Synchronize
        );
        assert_eq!(
            p.decide_from_deltas(&[0.1, 0.1, 0.2, 0.05]),
            SyncDecision::Local
        );
    }

    #[test]
    fn threshold_is_inclusive() {
        let p = SyncPolicy::new(0.25);
        assert!(p.worker_wants_sync(0.25));
        assert!(!p.worker_wants_sync(0.2499));
    }

    #[test]
    fn flags_map_one_to_one() {
        let p = SyncPolicy::new(0.5);
        assert_eq!(
            p.flags_from_deltas(&[0.4, 0.6, 0.5]),
            vec![false, true, true]
        );
    }

    #[test]
    fn monotonicity_in_delta() {
        // Raising δ can only turn Synchronize decisions into Local ones, never the reverse.
        let deltas = [0.1f32, 0.35, 0.2];
        let mut last_sync = true;
        for &d in &[0.0f32, 0.2, 0.3, 0.4, 1.0] {
            let sync = SyncPolicy::new(d).decide_from_deltas(&deltas) == SyncDecision::Synchronize;
            assert!(
                !sync || last_sync,
                "sync decisions must be monotone non-increasing in delta"
            );
            last_sync = sync;
        }
    }

    #[test]
    #[should_panic]
    fn negative_delta_rejected() {
        let _ = SyncPolicy::new(-0.1);
    }

    fn signal(iteration: usize, max_delta: f32, mean_loss: f32) -> RoundSignal {
        RoundSignal {
            iteration,
            max_delta,
            mean_loss,
            delta_mean: max_delta,
            delta_sq_mean: max_delta * max_delta,
            synced: true,
        }
    }

    #[test]
    fn fixed_policy_is_constant_and_label_matches_paper_naming() {
        let p = PolicySpec::Fixed { delta: 0.3 }.build();
        assert_eq!(p.delta(0), 0.3);
        assert_eq!(p.delta(10_000), 0.3);
        assert_eq!(p.label(), "d=0.3");
    }

    #[test]
    fn schedule_policy_switches_at_stage_starts() {
        let mut p = ScheduledDelta::new(vec![0, 10, 30], vec![0.0, 0.2, 0.5]);
        assert_eq!(p.delta(0), 0.0);
        assert_eq!(p.delta(9), 0.0);
        assert_eq!(p.delta(10), 0.2);
        assert_eq!(p.delta(29), 0.2);
        assert_eq!(p.delta(30), 0.5);
        assert_eq!(p.delta(1000), 0.5);
        // Observations are ignored: the schedule is a pure function of the iteration.
        p.observe(&signal(5, 100.0, 100.0));
        assert_eq!(p.delta(5), 0.0);
        assert_eq!(p.label(), "schedule(0:0,10:0.2,30:0.5)");
    }

    #[test]
    fn schedule_validation_rejects_broken_stages() {
        assert!(PolicySpec::Schedule {
            starts: vec![5],
            deltas: vec![0.1]
        }
        .validate()
        .is_err());
        assert!(PolicySpec::Schedule {
            starts: vec![0, 10, 10],
            deltas: vec![0.1, 0.2, 0.3]
        }
        .validate()
        .is_err());
        assert!(PolicySpec::Schedule {
            starts: vec![0],
            deltas: vec![f32::NAN]
        }
        .validate()
        .is_err());
        assert!(PolicySpec::Schedule {
            starts: vec![],
            deltas: vec![]
        }
        .validate()
        .is_err());
    }

    #[test]
    fn adaptive_policy_switches_to_exploit_once_the_loss_settles() {
        let mut p = AdaptiveDelta::from_spec(&PolicySpec::adaptive_default());
        assert!(!p.exploiting());
        assert_eq!(p.delta(0), 0.0, "starts in the sync-eager regime");
        // A fast-descending loss keeps the eager regime past the warmup.
        let mut loss = 8.0f32;
        for it in 0..20 {
            p.observe(&signal(it, 0.05, loss));
            loss *= 0.85; // 15% per round: well above the 3% settle threshold
        }
        assert!(!p.exploiting(), "loss still descending fast");
        // The loss flattens; after `patience` calm rounds the policy relaxes.
        let mut switched_at = None;
        for it in 20..60 {
            p.observe(&signal(it, 0.05, loss));
            if p.exploiting() && switched_at.is_none() {
                switched_at = Some(it);
            }
        }
        assert!(p.exploiting(), "must switch after the loss settles");
        assert_eq!(p.delta(60), 0.5);
        assert!(switched_at.unwrap() >= 20 + 4 - 1, "respects patience");
        assert_eq!(p.switches(), 1);
    }

    #[test]
    fn adaptive_policy_respects_warmup_even_with_a_flat_loss() {
        // A loss that is flat from the very first round must not trigger the switch
        // before `warmup` + `patience` observations.
        let mut p = AdaptiveDelta::from_spec(&PolicySpec::adaptive_default());
        for it in 0..11 {
            p.observe(&signal(it, 0.05, 1.0));
            assert!(!p.exploiting(), "round {it} is inside warmup + patience");
        }
        p.observe(&signal(11, 0.05, 1.0));
        assert!(
            p.exploiting(),
            "flat loss switches right after warmup+patience"
        );
    }

    #[test]
    fn adaptive_policy_treats_a_rising_loss_as_volatility_not_settling() {
        // A diverging run (smoothed loss climbing well beyond `settle` per round)
        // must stay in the eager regime — regression is not a plateau.
        let mut p = AdaptiveDelta::from_spec(&PolicySpec::adaptive_default());
        let mut loss = 1.0f32;
        for it in 0..40 {
            p.observe(&signal(it, 0.05, loss));
            loss *= 1.2; // +20% per round: far above the 3% settle band
        }
        assert!(
            !p.exploiting(),
            "a regressing loss must keep syncing eagerly"
        );
    }

    #[test]
    fn adaptive_policy_reverts_on_a_delta_spike() {
        let mut p = AdaptiveDelta::from_spec(&PolicySpec::adaptive_default());
        for it in 0..30 {
            p.observe(&signal(it, 0.05, 1.0));
        }
        assert!(p.exploiting());
        // A Δ(g) jump to 4x its running level (a rejoining worker's restarted
        // tracker) re-enters the eager regime; the Δ EWMA sits near 0.05.
        p.observe(&signal(30, 0.2, 1.0));
        assert!(!p.exploiting(), "spike must re-enter the eager regime");
        assert_eq!(p.delta(31), 0.0);
        assert_eq!(p.switches(), 2);
        // With the loss already calm, the policy re-relaxes after `patience` rounds.
        for it in 31..36 {
            p.observe(&signal(it, 0.05, 1.0));
        }
        assert!(
            p.exploiting(),
            "calm loss re-relaxes after the repair window"
        );
        assert_eq!(p.switches(), 3);
    }

    #[test]
    fn adaptive_policy_records_switch_rounds_and_trigger_state() {
        let mut p = AdaptiveDelta::from_spec(&PolicySpec::adaptive_default());
        assert!(p.last_switch().is_none());
        assert!(p.switch_rounds().is_empty());
        for it in 0..12 {
            p.observe(&signal(it, 0.05, 1.0));
        }
        // Flat loss: settles at round 11 (warmup 8 + patience 4).
        assert_eq!(p.switch_rounds(), &[11]);
        let settled = p.last_switch().expect("settle switch must be reported");
        assert!(settled.exploit);
        assert!(settled.delta_ewma > 0.0);
        // A quiet round clears the one-shot record but keeps the history.
        p.observe(&signal(12, 0.05, 1.0));
        assert!(p.last_switch().is_none());
        // A spike reverts and reports the pre-update Δ(g) baseline it compared with.
        p.observe(&signal(13, 0.5, 1.0));
        let spiked = p.last_switch().expect("spike switch must be reported");
        assert!(!spiked.exploit);
        assert!((spiked.delta_ewma - 0.05).abs() < 1e-6);
        assert_eq!(p.switch_rounds(), &[11, 13]);
        assert_eq!(p.switches(), p.switch_rounds().len() as u32);
        // Stateless policies expose the empty defaults.
        let fixed = PolicySpec::Fixed { delta: 0.1 }.build();
        assert!(fixed.last_switch().is_none());
        assert!(fixed.switch_rounds().is_empty());
    }

    #[test]
    fn adaptive_policy_is_deterministic_in_its_signal_sequence() {
        let run = || {
            let mut p = AdaptiveDelta::from_spec(&PolicySpec::adaptive_default());
            let mut deltas = Vec::new();
            for it in 0..80 {
                deltas.push(p.delta(it));
                let loss = 8.0 * (0.9f32).powi(it.min(40) as i32) + 0.2;
                let d = if it == 50 { 0.3 } else { 0.05 };
                p.observe(&signal(it, d, loss));
            }
            deltas
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn adaptive_validation_rejects_bad_configs() {
        let mut bad = PolicySpec::adaptive_default();
        if let PolicySpec::Adaptive { factor, .. } = &mut bad {
            *factor = 0.0;
        }
        assert!(bad.validate().is_err());
        let mut bad = PolicySpec::adaptive_default();
        if let PolicySpec::Adaptive { patience, .. } = &mut bad {
            *patience = 0;
        }
        assert!(bad.validate().is_err());
        let mut bad = PolicySpec::adaptive_default();
        if let PolicySpec::Adaptive { delta_exploit, .. } = &mut bad {
            *delta_exploit = f32::NAN;
        }
        assert!(bad.validate().is_err());
        let mut bad = PolicySpec::adaptive_default();
        if let PolicySpec::Adaptive { spike, .. } = &mut bad {
            *spike = 0.9; // a spike ratio must exceed 1
        }
        assert!(bad.validate().is_err());
        assert!(PolicySpec::adaptive_default().validate().is_ok());
    }

    #[test]
    fn only_the_adaptive_policy_consumes_round_signals() {
        assert!(!PolicySpec::Fixed { delta: 0.3 }.consumes_round_signals());
        assert!(!PolicySpec::Schedule {
            starts: vec![0, 10],
            deltas: vec![0.0, 0.5],
        }
        .consumes_round_signals());
        assert!(PolicySpec::adaptive_default().consumes_round_signals());
        assert!(PolicySpec::variance_default().consumes_round_signals());
    }

    /// A signal whose per-worker Δ(g) spread is controlled directly: `delta_mean` and
    /// the variance are chosen, the second moment follows.
    fn spread_signal(iteration: usize, mean: f32, variance: f32, mean_loss: f32) -> RoundSignal {
        RoundSignal {
            iteration,
            max_delta: mean,
            mean_loss,
            delta_mean: mean,
            delta_sq_mean: variance + mean * mean,
            synced: true,
        }
    }

    #[test]
    fn variance_policy_settles_like_adaptive_and_reenters_on_a_variance_blowup() {
        let mut p = VarianceDelta::from_spec(&PolicySpec::variance_default());
        assert!(!p.exploiting());
        assert_eq!(p.delta(0), 0.0);
        // Flat loss with a small, steady per-worker Δ variance: settles after
        // warmup + patience (round 11), exactly like the adaptive default.
        for it in 0..12 {
            p.observe(&spread_signal(it, 0.05, 1e-4, 1.0));
        }
        assert!(p.exploiting(), "flat loss must relax the threshold");
        assert_eq!(p.delta(12), 0.5);
        assert_eq!(p.switch_rounds(), &[11]);
        // A cluster-wide level shift (all workers' Δ move together: variance
        // unchanged) must NOT re-enter the eager regime...
        p.observe(&spread_signal(12, 0.5, 1e-4, 1.0));
        assert!(
            p.exploiting(),
            "level shifts with low variance stay relaxed"
        );
        // ...but a localized disturbance (variance 100× its running level) must.
        p.observe(&spread_signal(13, 0.06, 1e-2, 1.0));
        assert!(
            !p.exploiting(),
            "variance blow-up re-enters the eager regime"
        );
        let rec = p.last_switch().expect("switch must be reported");
        assert!(!rec.exploit);
        assert!(rec.delta_ewma > 0.0, "reports the variance baseline");
        assert_eq!(p.switches(), 2);
    }

    #[test]
    fn stateful_policies_export_and_import_bit_identical_state() {
        // Drive two stateful policies through a volatile prefix, checkpoint, restore
        // into fresh instances, and check the continuations agree bit for bit.
        let specs = [
            PolicySpec::adaptive_default(),
            PolicySpec::variance_default(),
        ];
        for spec in &specs {
            let mut a = spec.build();
            let mut loss = 4.0f32;
            for it in 0..25 {
                let var = if it % 7 == 0 { 3e-3 } else { 1e-4 };
                a.observe(&spread_signal(it, 0.05, var, loss));
                loss *= 0.93;
            }
            let state = a.export_state();
            let mut b = spec.build();
            b.import_state(&state);
            assert_eq!(
                b.export_state(),
                state,
                "{}: state must round-trip",
                spec.label()
            );
            assert_eq!(b.switch_rounds(), a.switch_rounds());
            for it in 25..60 {
                assert_eq!(a.delta(it).to_bits(), b.delta(it).to_bits());
                let var = if it == 40 { 5e-2 } else { 1e-4 };
                let sig = spread_signal(it, 0.05, var, loss);
                a.observe(&sig);
                b.observe(&sig);
                assert_eq!(
                    a.last_switch().is_some(),
                    b.last_switch().is_some(),
                    "{}: switch stream diverged at {it}",
                    spec.label()
                );
            }
            assert_eq!(a.switch_rounds(), b.switch_rounds());
        }
        // Stateless policies round-trip the empty default and reject junk.
        let mut fixed = PolicySpec::Fixed { delta: 0.1 }.build();
        let empty = fixed.export_state();
        assert_eq!(empty, PolicyState::default());
        fixed.import_state(&empty);
    }

    #[test]
    #[should_panic]
    fn stateless_policies_reject_non_empty_state() {
        let mut fixed = PolicySpec::Fixed { delta: 0.1 }.build();
        fixed.import_state(&PolicyState {
            ints: vec![1],
            floats: vec![],
        });
    }

    #[test]
    fn variance_validation_rejects_bad_configs() {
        let mut bad = PolicySpec::variance_default();
        if let PolicySpec::Variance { var_ratio, .. } = &mut bad {
            *var_ratio = 1.0; // must exceed 1
        }
        assert!(bad.validate().is_err());
        let mut bad = PolicySpec::variance_default();
        if let PolicySpec::Variance { factor, .. } = &mut bad {
            *factor = 1.5;
        }
        assert!(bad.validate().is_err());
        assert!(PolicySpec::variance_default().validate().is_ok());
    }

    #[test]
    fn spec_labels_are_stable_and_match_the_runtime_policies() {
        assert_eq!(PolicySpec::Fixed { delta: 0.25 }.label(), "d=0.25");
        assert_eq!(
            PolicySpec::adaptive_default().label(),
            "adaptive(0->0.5,warmup=8,settle=0.05x4,spike=2.5)"
        );
        // The spec-side formatting must never drift from the built policies' labels.
        for spec in [
            PolicySpec::Fixed { delta: 0.25 },
            PolicySpec::Schedule {
                starts: vec![0, 10, 30],
                deltas: vec![0.0, 0.2, 0.5],
            },
            PolicySpec::adaptive_default(),
            PolicySpec::variance_default(),
        ] {
            assert_eq!(spec.label(), spec.build().label());
        }
        assert_eq!(
            PolicySpec::variance_default().label(),
            "variance(0->0.5,warmup=8,settle=0.05x4,var=4)"
        );
    }
}

//! Durable, versioned, checksummed training checkpoints.
//!
//! Both drivers write a checkpoint every `K` rounds when [`crate::config::CheckpointSpec`]
//! is set, capturing everything a resumed run needs to be **byte-identical** to an
//! uninterrupted one: the PS global vector + snapshot ring, per-worker model /
//! optimizer / tracker state, the δ-policy state, RNG word positions, time/byte
//! accounting, and the canonically sorted trace prefix. `scenario_run --resume <ckpt>`
//! (and the equivalent library entry points) restore it and continue from the next
//! round.
//!
//! ## Format
//!
//! A line-oriented text file, human-diffable like the event log:
//!
//! ```text
//! selsync-ckpt v1
//! backend sim
//! fingerprint 9f8a7b6c5d4e3f21
//! round 7
//! sections 3
//! section ps 2 12
//! i 1 7
//! f 3f800000 40000000 ...
//! ...
//! trace 9
//! <raw event-log lines>
//! checksum 0123456789abcdef
//! ```
//!
//! Floats are stored as `f32::to_bits` hex words (bit-exact; no decimal rounding),
//! `f64` accumulators as `to_bits` inside the `i` array. The trailing `checksum`
//! line is FNV-1a-64 ([`selsync_comm::wire::checksum`]) over every preceding byte
//! and carries **no trailing newline**, so any single-byte corruption — including
//! in the checksum line itself — is rejected at decode time.

use std::fs;
use std::path::Path;

use selsync_comm::wire;

use crate::config::TrainConfig;

/// Format tag in the first line of every checkpoint file.
pub const CHECKPOINT_VERSION: u32 = 1;

/// One named state block: parallel integer/float arrays with a fixed, producer-defined
/// packing (read back with a [`SectionReader`] in the same order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Section {
    /// Section name (no whitespace; unique within a checkpoint).
    pub name: String,
    /// Integer payload (counters, flags, `f64::to_bits` words).
    pub ints: Vec<u64>,
    /// Float payload (parameters, EWMA state, losses).
    pub floats: Vec<f32>,
}

impl Section {
    /// Create an empty section.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(
            !name.is_empty() && !name.contains(char::is_whitespace),
            "section name must be non-empty and whitespace-free"
        );
        Section {
            name,
            ints: Vec::new(),
            floats: Vec::new(),
        }
    }

    /// Append an integer.
    pub fn push_int(&mut self, v: u64) {
        self.ints.push(v);
    }

    /// Append a usize as an integer.
    pub fn push_usize(&mut self, v: usize) {
        self.ints.push(v as u64);
    }

    /// Append a bool as 0/1.
    pub fn push_bool(&mut self, v: bool) {
        self.ints.push(u64::from(v));
    }

    /// Append an `f64` bit-exactly (as its `to_bits` word).
    pub fn push_f64(&mut self, v: f64) {
        self.ints.push(v.to_bits());
    }

    /// Append one float.
    pub fn push_f32(&mut self, v: f32) {
        self.floats.push(v);
    }

    /// Append an optional float as presence flag + value.
    pub fn push_opt_f32(&mut self, v: Option<f32>) {
        self.ints.push(u64::from(v.is_some()));
        self.floats.push(v.unwrap_or(0.0));
    }

    /// Append an optional integer as presence flag + value.
    pub fn push_opt_int(&mut self, v: Option<u64>) {
        self.ints.push(u64::from(v.is_some()));
        self.ints.push(v.unwrap_or(0));
    }

    /// Append a length-prefixed float slice.
    pub fn push_f32s(&mut self, vs: &[f32]) {
        self.ints.push(vs.len() as u64);
        self.floats.extend_from_slice(vs);
    }

    /// Append a length-prefixed integer slice.
    pub fn push_ints(&mut self, vs: &[u64]) {
        self.ints.push(vs.len() as u64);
        self.ints.extend_from_slice(vs);
    }

    /// A cursor reading the section back in write order.
    pub fn reader(&self) -> SectionReader<'_> {
        SectionReader {
            section: self,
            int_pos: 0,
            float_pos: 0,
        }
    }
}

/// Cursor over a [`Section`]'s parallel arrays; reads must mirror the write order.
/// Every accessor panics with the section name on underrun — a checkpoint that parses
/// but carries the wrong shape is a programming error, not an I/O condition.
#[derive(Debug)]
pub struct SectionReader<'a> {
    section: &'a Section,
    int_pos: usize,
    float_pos: usize,
}

impl SectionReader<'_> {
    fn next_int(&mut self) -> u64 {
        let v =
            *self.section.ints.get(self.int_pos).unwrap_or_else(|| {
                panic!("checkpoint section '{}': int underrun", self.section.name)
            });
        self.int_pos += 1;
        v
    }

    fn next_float(&mut self) -> f32 {
        let v = *self.section.floats.get(self.float_pos).unwrap_or_else(|| {
            panic!("checkpoint section '{}': float underrun", self.section.name)
        });
        self.float_pos += 1;
        v
    }

    /// Read one integer.
    pub fn int(&mut self) -> u64 {
        self.next_int()
    }

    /// Read one integer as usize.
    pub fn usize(&mut self) -> usize {
        self.next_int() as usize
    }

    /// Read one bool (0/1).
    pub fn bool(&mut self) -> bool {
        self.next_int() != 0
    }

    /// Read one `f64` stored as its bits.
    pub fn f64(&mut self) -> f64 {
        f64::from_bits(self.next_int())
    }

    /// Read one float.
    pub fn f32(&mut self) -> f32 {
        self.next_float()
    }

    /// Read an optional float (flag + value).
    pub fn opt_f32(&mut self) -> Option<f32> {
        let has = self.bool();
        let v = self.next_float();
        has.then_some(v)
    }

    /// Read an optional integer (flag + value).
    pub fn opt_int(&mut self) -> Option<u64> {
        let has = self.bool();
        let v = self.next_int();
        has.then_some(v)
    }

    /// Read a length-prefixed float slice.
    pub fn f32s(&mut self) -> Vec<f32> {
        let n = self.usize();
        (0..n).map(|_| self.next_float()).collect()
    }

    /// Read a length-prefixed integer slice.
    pub fn ints(&mut self) -> Vec<u64> {
        let n = self.usize();
        (0..n).map(|_| self.next_int()).collect()
    }

    /// Assert the section was consumed exactly (catches producer/consumer drift).
    pub fn finish(self) {
        assert!(
            self.int_pos == self.section.ints.len() && self.float_pos == self.section.floats.len(),
            "checkpoint section '{}': {} ints / {} floats left unread",
            self.section.name,
            self.section.ints.len() - self.int_pos,
            self.section.floats.len() - self.float_pos,
        );
    }
}

/// A complete, decoded checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Which driver wrote it (`"sim"` / `"threaded"` / `"process"`); resume
    /// refuses a mismatch.
    pub backend: String,
    /// [`config_fingerprint`] of the run's configuration; resume refuses a mismatch.
    pub fingerprint: u64,
    /// The completed round the state was captured *after*; resume continues at
    /// `round + 1`.
    pub round: usize,
    /// Named state blocks in write order.
    pub sections: Vec<Section>,
    /// The canonically sorted encoded trace prefix (rounds `0..=round`), preloaded
    /// into the resumed run's sink.
    pub trace: Vec<String>,
}

impl Checkpoint {
    /// Start an empty checkpoint.
    pub fn new(backend: impl Into<String>, fingerprint: u64, round: usize) -> Self {
        let backend = backend.into();
        assert!(
            !backend.is_empty() && !backend.contains(char::is_whitespace),
            "backend tag must be non-empty and whitespace-free"
        );
        Checkpoint {
            backend,
            fingerprint,
            round,
            sections: Vec::new(),
            trace: Vec::new(),
        }
    }

    /// Append a section (names must be unique).
    pub fn add_section(&mut self, section: Section) {
        assert!(
            self.section(&section.name).is_none(),
            "duplicate checkpoint section '{}'",
            section.name
        );
        self.sections.push(section);
    }

    /// Look up a section by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// A reader over the named section; panics when absent (shape errors are bugs).
    pub fn read_section(&self, name: &str) -> SectionReader<'_> {
        self.section(name)
            .unwrap_or_else(|| panic!("checkpoint is missing section '{name}'"))
            .reader()
    }

    /// Serialize to the versioned text format (see the module docs).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("selsync-ckpt v{CHECKPOINT_VERSION}\n"));
        out.push_str(&format!("backend {}\n", self.backend));
        out.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        out.push_str(&format!("round {}\n", self.round));
        out.push_str(&format!("sections {}\n", self.sections.len()));
        for s in &self.sections {
            out.push_str(&format!(
                "section {} {} {}\n",
                s.name,
                s.ints.len(),
                s.floats.len()
            ));
            let ints: Vec<String> = s.ints.iter().map(|v| v.to_string()).collect();
            out.push_str(&format!("i {}\n", ints.join(" ")));
            let floats: Vec<String> = s
                .floats
                .iter()
                .map(|v| format!("{:08x}", v.to_bits()))
                .collect();
            out.push_str(&format!("f {}\n", floats.join(" ")));
        }
        out.push_str(&format!("trace {}\n", self.trace.len()));
        for line in &self.trace {
            debug_assert!(!line.contains('\n'), "trace lines must be single lines");
            out.push_str(line);
            out.push('\n');
        }
        let sum = wire::checksum(out.as_bytes());
        // Deliberately no trailing newline: the checksum line protects itself.
        out.push_str(&format!("checksum {sum:016x}"));
        out
    }

    /// Parse and verify the text format. Any structural damage or checksum mismatch
    /// is an error — a checkpoint is either bit-perfect or rejected.
    pub fn decode(text: &str) -> Result<Checkpoint, String> {
        let last_nl = text
            .rfind('\n')
            .ok_or_else(|| "checkpoint: missing body".to_string())?;
        let (body, last_line) = text.split_at(last_nl + 1);
        let stated = last_line
            .strip_prefix("checksum ")
            .ok_or_else(|| "checkpoint: missing checksum line".to_string())?;
        let stated = u64::from_str_radix(stated.trim(), 16)
            .map_err(|e| format!("checkpoint: bad checksum literal: {e}"))?;
        let actual = wire::checksum(body.as_bytes());
        if stated != actual {
            return Err(format!(
                "checkpoint: checksum mismatch (stated {stated:016x}, computed {actual:016x})"
            ));
        }

        let mut lines = body.lines();
        let mut next = |what: &str| {
            lines
                .next()
                .ok_or_else(|| format!("checkpoint: truncated before {what}"))
        };
        let version = next("version")?;
        if version != format!("selsync-ckpt v{CHECKPOINT_VERSION}") {
            return Err(format!("checkpoint: unsupported version line '{version}'"));
        }
        let backend = next("backend")?
            .strip_prefix("backend ")
            .ok_or_else(|| "checkpoint: missing backend line".to_string())?
            .to_string();
        let fingerprint = next("fingerprint")?
            .strip_prefix("fingerprint ")
            .ok_or_else(|| "checkpoint: missing fingerprint line".to_string())
            .and_then(|h| {
                u64::from_str_radix(h, 16).map_err(|e| format!("checkpoint: bad fingerprint: {e}"))
            })?;
        let round: usize = next("round")?
            .strip_prefix("round ")
            .ok_or_else(|| "checkpoint: missing round line".to_string())
            .and_then(|r| r.parse().map_err(|e| format!("checkpoint: bad round: {e}")))?;
        let n_sections: usize = next("sections")?
            .strip_prefix("sections ")
            .ok_or_else(|| "checkpoint: missing sections line".to_string())
            .and_then(|n| {
                n.parse()
                    .map_err(|e| format!("checkpoint: bad section count: {e}"))
            })?;

        let mut ckpt = Checkpoint::new(
            if backend.is_empty() || backend.contains(char::is_whitespace) {
                return Err("checkpoint: malformed backend tag".to_string());
            } else {
                backend
            },
            fingerprint,
            round,
        );
        for _ in 0..n_sections {
            let header = next("section header")?;
            let mut parts = header
                .strip_prefix("section ")
                .ok_or_else(|| format!("checkpoint: expected section header, got '{header}'"))?
                .split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| "checkpoint: section header missing name".to_string())?
                .to_string();
            let ni: usize = parts
                .next()
                .ok_or_else(|| "checkpoint: section header missing int count".to_string())?
                .parse()
                .map_err(|e| format!("checkpoint: bad int count: {e}"))?;
            let nf: usize = parts
                .next()
                .ok_or_else(|| "checkpoint: section header missing float count".to_string())?
                .parse()
                .map_err(|e| format!("checkpoint: bad float count: {e}"))?;
            if parts.next().is_some() {
                return Err(format!(
                    "checkpoint: trailing junk in section header '{header}'"
                ));
            }
            let int_line = next("int line")?;
            let ints: Vec<u64> = int_line
                .strip_prefix("i")
                .ok_or_else(|| format!("checkpoint: expected int line, got '{int_line}'"))?
                .split_whitespace()
                .map(|v| v.parse().map_err(|e| format!("checkpoint: bad int: {e}")))
                .collect::<Result<_, _>>()?;
            if ints.len() != ni {
                return Err(format!(
                    "checkpoint: section '{name}' declares {ni} ints, found {}",
                    ints.len()
                ));
            }
            let float_line = next("float line")?;
            let floats: Vec<f32> = float_line
                .strip_prefix("f")
                .ok_or_else(|| format!("checkpoint: expected float line, got '{float_line}'"))?
                .split_whitespace()
                .map(|v| {
                    u32::from_str_radix(v, 16)
                        .map(f32::from_bits)
                        .map_err(|e| format!("checkpoint: bad float word: {e}"))
                })
                .collect::<Result<_, _>>()?;
            if floats.len() != nf {
                return Err(format!(
                    "checkpoint: section '{name}' declares {nf} floats, found {}",
                    floats.len()
                ));
            }
            if name.is_empty() || ckpt.section(&name).is_some() {
                return Err(format!(
                    "checkpoint: bad or duplicate section name '{name}'"
                ));
            }
            ckpt.sections.push(Section { name, ints, floats });
        }
        let n_trace: usize = next("trace")?
            .strip_prefix("trace ")
            .ok_or_else(|| "checkpoint: missing trace line".to_string())
            .and_then(|n| {
                n.parse()
                    .map_err(|e| format!("checkpoint: bad trace count: {e}"))
            })?;
        for _ in 0..n_trace {
            ckpt.trace.push(next("trace entry")?.to_string());
        }
        if lines.next().is_some() {
            return Err("checkpoint: trailing data after trace".to_string());
        }
        Ok(ckpt)
    }

    /// Write to `path`, creating parent directories.
    pub fn write_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        fs::write(path, self.encode())
    }

    /// Read and verify the checkpoint at `path`.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Checkpoint, String> {
        let path = path.as_ref();
        let text =
            fs::read_to_string(path).map_err(|e| format!("checkpoint {}: {e}", path.display()))?;
        Checkpoint::decode(&text).map_err(|e| format!("checkpoint {}: {e}", path.display()))
    }
}

/// FNV-1a-64 fingerprint of the configuration facets a checkpoint depends on.
///
/// Resume refuses a checkpoint whose fingerprint disagrees with the live config —
/// continuing a run under a different model / cluster shape / fault schedule would
/// silently break the byte-identity guarantee. Timing-model and trace knobs are
/// deliberately excluded (they do not change the training state machine's inputs;
/// the trace sink is per-run anyway).
pub fn config_fingerprint(cfg: &TrainConfig) -> u64 {
    let facets = format!(
        "{:?}|{}|{}|{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}",
        cfg.model,
        cfg.workers,
        cfg.batch_size,
        cfg.iterations,
        cfg.seed,
        cfg.partition,
        cfg.non_iid_labels_per_worker,
        cfg.algorithm,
        cfg.optimizer,
        cfg.lr,
        cfg.delta_policy,
        cfg.rejoin_pull,
        cfg.comm_faults,
        cfg.ps_faults,
        cfg.ewma_window,
    );
    let conditions = format!("{:?}", cfg.conditions);
    wire::checksum(format!("{facets}#{conditions}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_nn::model::ModelKind;

    fn sample() -> Checkpoint {
        let mut ckpt = Checkpoint::new("sim", 0xDEAD_BEEF_0123_4567, 7);
        let mut ps = Section::new("ps");
        ps.push_f32s(&[1.0, -0.5, 3.25e-8, f32::MIN_POSITIVE]);
        ps.push_opt_int(Some(7));
        ckpt.add_section(ps);
        let mut w0 = Section::new("worker0");
        w0.push_usize(42);
        w0.push_f64(1.234_567_890_123_456_7);
        w0.push_opt_f32(None);
        w0.push_bool(true);
        w0.push_ints(&[3, 1, 4, 1, 5]);
        ckpt.add_section(w0);
        ckpt.trace = vec![
            "header\tversion=1".to_string(),
            "round\tround=0 delta=0.1".to_string(),
        ];
        ckpt
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let ckpt = sample();
        let text = ckpt.encode();
        let back = Checkpoint::decode(&text).expect("decode");
        assert_eq!(back, ckpt);
        // Idempotent: re-encoding the decoded value is byte-identical.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn section_reader_reads_back_in_write_order() {
        let ckpt = sample();
        let mut r = ckpt.read_section("worker0");
        assert_eq!(r.usize(), 42);
        assert_eq!(r.f64(), 1.234_567_890_123_456_7);
        assert_eq!(r.opt_f32(), None);
        assert!(r.bool());
        assert_eq!(r.ints(), vec![3, 1, 4, 1, 5]);
        r.finish();

        let mut r = ckpt.read_section("ps");
        let v = r.f32s();
        assert_eq!(v[3], f32::MIN_POSITIVE);
        assert_eq!(r.opt_int(), Some(7));
        r.finish();
    }

    #[test]
    #[should_panic]
    fn unread_state_is_a_shape_error() {
        let ckpt = sample();
        let r = ckpt.read_section("ps");
        r.finish(); // nothing consumed
    }

    #[test]
    fn non_finite_floats_survive_the_codec() {
        let mut ckpt = Checkpoint::new("threaded", 1, 0);
        let mut s = Section::new("odd");
        s.push_f32(f32::NAN);
        s.push_f32(f32::NEG_INFINITY);
        s.push_f32(-0.0);
        ckpt.add_section(s);
        let back = Checkpoint::decode(&ckpt.encode()).expect("decode");
        let odd = back.section("odd").unwrap();
        assert!(odd.floats[0].is_nan());
        assert_eq!(odd.floats[1], f32::NEG_INFINITY);
        assert_eq!(odd.floats[2].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn every_single_byte_substitution_is_rejected() {
        // Exhaustive over a small checkpoint: flip each byte through a few
        // replacement values and require decode to fail.
        let mut ckpt = Checkpoint::new("sim", 3, 1);
        let mut s = Section::new("a");
        s.push_f32(0.5);
        s.push_int(9);
        ckpt.add_section(s);
        ckpt.trace = vec!["round\tround=0".to_string()];
        let text = ckpt.encode();
        let bytes = text.as_bytes();
        for pos in 0..bytes.len() {
            for repl in [b'0', b'z', b'\n', 0x7f] {
                if bytes[pos] == repl {
                    continue;
                }
                let mut corrupt = bytes.to_vec();
                corrupt[pos] = repl;
                let corrupt = String::from_utf8_lossy(&corrupt).into_owned();
                assert!(
                    Checkpoint::decode(&corrupt).is_err(),
                    "substitution at byte {pos} ({:?} -> {:?}) was accepted",
                    bytes[pos] as char,
                    repl as char
                );
            }
        }
    }

    #[test]
    fn truncation_and_junk_are_rejected() {
        let text = sample().encode();
        for cut in [0, 10, text.len() / 2, text.len() - 1] {
            assert!(Checkpoint::decode(&text[..cut]).is_err(), "cut at {cut}");
        }
        assert!(Checkpoint::decode(&format!("junk\n{text}")).is_err());
        assert!(Checkpoint::decode("").is_err());
    }

    #[test]
    fn file_round_trip_creates_directories() {
        let dir = std::env::temp_dir().join(format!("selsync-ckpt-test-{}", std::process::id()));
        let path = dir.join("nested/ckpt-7");
        let ckpt = sample();
        ckpt.write_file(&path).expect("write");
        let back = Checkpoint::read_file(&path).expect("read");
        assert_eq!(back, ckpt);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_tracks_training_facets_not_timing() {
        let cfg = TrainConfig::small(ModelKind::ResNetLike, 4);
        let base = config_fingerprint(&cfg);
        assert_eq!(base, config_fingerprint(&cfg.clone()), "deterministic");

        let mut seed = cfg.clone();
        seed.seed += 1;
        assert_ne!(base, config_fingerprint(&seed));

        let mut workers = cfg.clone();
        workers.workers = 8;
        assert_ne!(base, config_fingerprint(&workers));

        let mut faults = cfg.clone();
        faults.ps_faults = Some(selsync_comm::PsFaultSpec {
            seed: 5,
            windows: vec![(3, 2)],
            flaky: 0.0,
        });
        assert_ne!(base, config_fingerprint(&faults));

        // Timing-model knobs do not invalidate checkpoints.
        let mut timing = cfg.clone();
        timing.network.latency_s *= 2.0;
        assert_eq!(base, config_fingerprint(&timing));
    }
}

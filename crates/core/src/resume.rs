//! Cross-backend checkpoint translation: resume a simulator checkpoint on the
//! threaded driver and vice versa.
//!
//! Both backends checkpoint at the same place — a round boundary after round
//! `ckpt.round` — and agree on every *durable* quantity: per-worker parameter
//! replicas, optimizer and `Δ(g_i)` tracker state, the synchronized global
//! vector, the δ-policy state and the trace prefix. What differs is the
//! bookkeeping each backend keeps around that shared core:
//!
//! * the simulator stores cluster-level aggregates (LSSR, cost-model time,
//!   bytes, eval history, its sampling RNG cursor), while
//! * the threaded driver stores per-worker LSSR counters and the parameter
//!   server's wire-level state (newest-global guard, snapshot ring).
//!
//! The translators below map one layout onto the other. Schedule-pure cursors
//! (data-shard position, forward counter, presence edges) are recomputed from
//! the configuration exactly as the target backend's own resume path would.
//! Quantities only one backend measures are rebuilt best-effort:
//!
//! * **sim → threaded**: each worker's `last_loss` is seeded with the cluster's
//!   last train loss (overwritten at the worker's first post-resume present
//!   round), and a scheduled-rejoin snapshot ring is reconstructed with only
//!   the *latest* synchronized snapshot — a rejoin that needs an older ring
//!   entry than the last pre-resume sync is outside the translated image.
//! * **threaded → sim**: the cost-model aggregates (simulated compute/comm
//!   seconds, bytes) and the eval history restart from zero — the threaded
//!   driver never computes them. Schedule-level facts (sync rounds, LSSR,
//!   losses, `Δ` state, the trace) carry over exactly, so the resumed run's
//!   event log and synchronization schedule still match an uninterrupted
//!   simulator run byte for byte on crash-free schedules.
//!
//! `tests/ps_fault_parity.rs` pins both directions across a PS-outage schedule.

use crate::checkpoint::{Checkpoint, Section};
use crate::config::{RejoinPull, TrainConfig};
use crate::sim;
use selsync_comm::ps::{PsState, RingState, DEFAULT_SNAPSHOT_DEPTH};
use selsync_nn::model::PaperModel;
use selsync_tensor::rng;

/// Pack a parameter server's exported state into the checkpoint `ps` section —
/// the single packing both the threaded driver and the process hub write, and
/// the mirror of [`read_ps_state`].
pub(crate) fn ps_section(state: &PsState) -> Section {
    let mut section = Section::new("ps");
    section.push_f32s(&state.global);
    section.push_opt_int(state.last_global_round);
    section.push_bool(state.ring.is_some());
    if let Some(ring) = &state.ring {
        section.push_usize(ring.depth);
        section.push_f32s(&ring.initial);
        section.push_usize(ring.entries.len());
        for (round, mean) in &ring.entries {
            section.push_int(*round);
            section.push_f32s(mean);
        }
        section.push_opt_int(ring.evicted_min);
    }
    section
}

/// Read a checkpoint's `ps` section back into a restorable [`PsState`].
pub(crate) fn read_ps_state(ckpt: &Checkpoint) -> PsState {
    let mut reader = ckpt.read_section("ps");
    let global = reader.f32s();
    let last_global_round = reader.opt_int();
    let ring = if reader.bool() {
        let depth = reader.usize();
        let initial = reader.f32s();
        let count = reader.usize();
        let entries = (0..count)
            .map(|_| {
                let round = reader.int();
                let mean = reader.f32s();
                (round, mean)
            })
            .collect();
        let evicted_min = reader.opt_int();
        Some(RingState {
            depth,
            initial,
            entries,
            evicted_min,
        })
    } else {
        None
    };
    reader.finish();
    PsState {
        global,
        last_global_round,
        ring,
    }
}

/// Relabel a checkpoint's backend tag. The threaded driver and the process hub
/// write the *identical* image layout (same `ps`/`board`/`worker{w}` packing,
/// same quiescent point — a round boundary with the round's signals observed),
/// so cross-backend translation between them is a pure relabel.
fn relabel(ckpt: &Checkpoint, from: &str, to: &str) -> Checkpoint {
    assert_eq!(
        ckpt.backend, from,
        "expected a {from:?} checkpoint to relabel as {to:?}, got backend {:?}",
        ckpt.backend
    );
    let mut out = ckpt.clone();
    out.backend = to.to_string();
    out
}

/// Translate a threaded-driver checkpoint for the multi-process backend.
pub fn threaded_to_process(ckpt: &Checkpoint) -> Checkpoint {
    relabel(ckpt, "threaded", "process")
}

/// Translate a process-backend checkpoint for the threaded driver.
pub fn process_to_threaded(ckpt: &Checkpoint) -> Checkpoint {
    relabel(ckpt, "process", "threaded")
}

/// Translate a simulator checkpoint for the multi-process backend.
pub fn sim_to_process(cfg: &TrainConfig, ckpt: &Checkpoint) -> Checkpoint {
    threaded_to_process(&sim_to_threaded(cfg, ckpt))
}

/// The per-worker durable core both backends store (identical field order on
/// the wire): parameters, optimizer state, tracker state.
struct WorkerCore {
    params: Vec<f32>,
    opt_t: u64,
    opt_buffers: Vec<Vec<f32>>,
    ewma_history: Vec<f32>,
    ewma_smoothed: Option<f32>,
    previous_smoothed: Option<f32>,
    tracker_last_delta: f32,
    tracker_max_delta: f32,
    tracker_steps: u64,
}

impl WorkerCore {
    fn read(reader: &mut crate::checkpoint::SectionReader) -> Self {
        let params = reader.f32s();
        let opt_t = reader.int();
        let buffer_count = reader.usize();
        let opt_buffers = (0..buffer_count).map(|_| reader.f32s()).collect();
        Self {
            params,
            opt_t,
            opt_buffers,
            ewma_history: reader.f32s(),
            ewma_smoothed: reader.opt_f32(),
            previous_smoothed: reader.opt_f32(),
            tracker_last_delta: reader.f32(),
            tracker_max_delta: reader.f32(),
            tracker_steps: reader.int(),
        }
    }

    fn write(&self, section: &mut Section) {
        section.push_f32s(&self.params);
        section.push_int(self.opt_t);
        section.push_usize(self.opt_buffers.len());
        for buffer in &self.opt_buffers {
            section.push_f32s(buffer);
        }
        section.push_f32s(&self.ewma_history);
        section.push_opt_f32(self.ewma_smoothed);
        section.push_opt_f32(self.previous_smoothed);
        section.push_f32(self.tracker_last_delta);
        section.push_f32(self.tracker_max_delta);
        section.push_int(self.tracker_steps);
    }
}

/// The length of worker `w`'s circular data traversal (its IID partition or
/// its non-IID label shard) — the modulus the schedule-pure shard cursor is
/// recomputed under.
fn traversal_len(cfg: &TrainConfig, w: usize) -> usize {
    let (train, _) = sim::build_datasets(cfg);
    let model = PaperModel::build(cfg.model, cfg.seed);
    let iid_order = sim::iid_sample_order(&train, &model.task);
    sim::worker_traversal(cfg, &train, &iid_order, w).len()
}

/// Translate a simulator checkpoint into the threaded driver's layout, so
/// `run_threaded` can resume a run the sequential simulator started.
pub fn sim_to_threaded(cfg: &TrainConfig, ckpt: &Checkpoint) -> Checkpoint {
    assert_eq!(
        ckpt.backend, "sim",
        "sim_to_threaded expects a simulator checkpoint, got backend {:?}",
        ckpt.backend
    );
    let h = ckpt.round;
    let conditions = cfg.effective_conditions();

    let mut reader = ckpt.read_section("sim");
    let _word_pos = reader.int();
    let _local_steps = reader.int();
    let _sync_steps = reader.int();
    let sync_rounds: Vec<usize> = reader.ints().into_iter().map(|r| r as usize).collect();
    let _compute_time_s = reader.f64();
    let _comm_time_s = reader.f64();
    let _bytes = reader.int();
    let last_train_loss = reader.f32();
    let _max_delta_seen = reader.f32();
    let _last_round = reader.opt_int();
    let _forwards_issued = reader.int();
    let n_history = reader.usize();
    for _ in 0..n_history {
        let _it = reader.usize();
        let _time = reader.f64();
        for _ in 0..5 {
            let _f = reader.f32();
        }
    }
    reader.finish();

    let mut reader = ckpt.read_section("policy");
    let policy_ints = reader.ints();
    let policy_floats = reader.f32s();
    reader.finish();
    let mut reader = ckpt.read_section("global");
    let global = reader.f32s();
    reader.finish();

    let mut out = Checkpoint::new("threaded", ckpt.fingerprint, h);

    // PS state: the global vector is the durable truth; the newest-global guard
    // is the last synchronized round. Under scheduled rejoin pulls the snapshot
    // ring is rebuilt with the one snapshot the image actually holds — the
    // global vector at the latest sync round.
    let last_sync = sync_rounds.last().copied();
    let mut section = Section::new("ps");
    section.push_f32s(&global);
    section.push_opt_int(last_sync.map(|r| r as u64));
    let scheduled_ring = cfg.rejoin_pull == RejoinPull::Scheduled;
    section.push_bool(scheduled_ring);
    if scheduled_ring {
        section.push_usize(DEFAULT_SNAPSHOT_DEPTH);
        section.push_f32s(&PaperModel::build(cfg.model, cfg.seed).params_flat());
        match last_sync {
            Some(round) => {
                section.push_usize(1);
                section.push_int(round as u64);
                section.push_f32s(&global);
            }
            None => section.push_usize(0),
        }
        section.push_opt_int(None);
    }
    out.add_section(section);

    let mut section = Section::new("board");
    section.push_ints(&policy_ints);
    section.push_f32s(&policy_floats);
    out.add_section(section);

    for w in 0..cfg.workers {
        let mut reader = ckpt.read_section(&format!("worker{w}"));
        let core = WorkerCore::read(&mut reader);
        let _shard_cursor = reader.usize();
        let _last_delta = reader.f32();
        let _progress = reader.usize();
        reader.finish();

        // The cluster-level sync schedule restricted to this worker's presence,
        // exactly what the threaded worker would have accumulated itself.
        let worker_syncs: Vec<u64> = sync_rounds
            .iter()
            .filter(|&&r| conditions.is_present(w, r))
            .map(|&r| r as u64)
            .collect();
        let present: u64 = (0..=h).filter(|&r| conditions.is_present(w, r)).count() as u64;

        let mut section = Section::new(format!("worker{w}"));
        core.write(&mut section);
        section.push_int(worker_syncs.len() as u64);
        section.push_int(present - worker_syncs.len() as u64);
        section.push_ints(&worker_syncs);
        // The simulator does not store per-worker losses; seed with the cluster
        // loss — each worker overwrites it at its first post-resume round.
        section.push_f32(last_train_loss);
        out.add_section(section);
    }

    out.trace = ckpt.trace.clone();
    out
}

/// Translate a threaded-driver checkpoint into the simulator's layout, so
/// `run` can resume a run the threaded cluster started.
pub fn threaded_to_sim(cfg: &TrainConfig, ckpt: &Checkpoint) -> Checkpoint {
    assert_eq!(
        ckpt.backend, "threaded",
        "threaded_to_sim expects a threaded checkpoint, got backend {:?}",
        ckpt.backend
    );
    let h = ckpt.round;
    let conditions = cfg.effective_conditions();

    let mut reader = ckpt.read_section("ps");
    let global = reader.f32s();
    let _last_global_round = reader.opt_int();
    if reader.bool() {
        let _depth = reader.usize();
        let _initial = reader.f32s();
        let count = reader.usize();
        for _ in 0..count {
            let _round = reader.int();
            let _mean = reader.f32s();
        }
        let _evicted_min = reader.opt_int();
    }
    reader.finish();

    let mut reader = ckpt.read_section("board");
    let policy_ints = reader.ints();
    let policy_floats = reader.f32s();
    reader.finish();

    let mut cores = Vec::with_capacity(cfg.workers);
    let mut worker_syncs: Vec<Vec<usize>> = Vec::with_capacity(cfg.workers);
    let mut worker_losses = Vec::with_capacity(cfg.workers);
    for w in 0..cfg.workers {
        let mut reader = ckpt.read_section(&format!("worker{w}"));
        let core = WorkerCore::read(&mut reader);
        let _sync_steps = reader.int();
        let _local_steps = reader.int();
        let rounds: Vec<usize> = reader.ints().into_iter().map(|r| r as usize).collect();
        let last_loss = reader.f32();
        reader.finish();
        cores.push(core);
        worker_syncs.push(rounds);
        worker_losses.push(last_loss);
    }

    // Cluster-level schedule facts from the per-worker views. A round is a sync
    // round iff any present worker synchronized at it (all of them do, so the
    // union is exact); everything else the cluster ran is a local step.
    let mut sync_rounds: Vec<usize> = Vec::new();
    for rounds in &worker_syncs {
        for &r in rounds {
            if !sync_rounds.contains(&r) {
                sync_rounds.push(r);
            }
        }
    }
    sync_rounds.sort_unstable();
    let sync_steps = sync_rounds.len() as u64;
    let local_steps = (h as u64 + 1) - sync_steps;

    // The simulator's `last_train_loss` is the loss of the highest-indexed
    // present worker of the most recent non-empty round — which that worker's
    // own `last_loss` recorded.
    let last_nonempty = (0..=h)
        .rev()
        .find(|&r| !conditions.present_workers(cfg.workers, r).is_empty());
    let last_train_loss = last_nonempty
        .and_then(|r| conditions.present_workers(cfg.workers, r).last().copied())
        .map(|w| worker_losses[w])
        .unwrap_or(0.0);
    // Run-wide max Δ(g_i): every contribution came from some worker's tracker.
    // (A post-crash tracker restart forgets its pre-crash max — crash-free
    // schedules are exact; see the module docs.)
    let max_delta_seen = cores
        .iter()
        .map(|c| c.tracker_max_delta)
        .fold(0.0f32, f32::max);
    let forwards_issued: u64 = (0..=h)
        .map(|r| conditions.present_workers(cfg.workers, r).len() as u64)
        .sum();

    let mut out = Checkpoint::new("sim", ckpt.fingerprint, h);
    let mut section = Section::new("sim");
    // The simulator's cluster RNG is untouched on IID runs without
    // data-injection faults, so the freshly-derived cursor is exact.
    section.push_int(rng::derived(cfg.seed, 0xC1A5).word_pos());
    section.push_int(local_steps);
    section.push_int(sync_steps);
    let rounds_u64: Vec<u64> = sync_rounds.iter().map(|&r| r as u64).collect();
    section.push_ints(&rounds_u64);
    // Cost-model aggregates the threaded driver never computes restart at zero.
    section.push_f64(0.0);
    section.push_f64(0.0);
    section.push_int(0);
    section.push_f32(last_train_loss);
    section.push_f32(max_delta_seen);
    section.push_opt_int(last_nonempty.map(|r| r as u64));
    section.push_int(forwards_issued);
    section.push_usize(0); // eval history: not recoverable from the threaded image
    out.add_section(section);

    for (w, core) in cores.iter().enumerate() {
        let present = (0..=h).filter(|&r| conditions.is_present(w, r)).count();
        let mut section = Section::new(format!("worker{w}"));
        core.write(&mut section);
        section.push_usize((present * cfg.batch_size) % traversal_len(cfg, w));
        section.push_f32(core.tracker_last_delta);
        section.push_usize(present);
        out.add_section(section);
    }

    let mut section = Section::new("policy");
    section.push_ints(&policy_ints);
    section.push_f32s(&policy_floats);
    out.add_section(section);
    let mut section = Section::new("global");
    section.push_f32s(&global);
    out.add_section(section);

    out.trace = ckpt.trace.clone();
    out
}

//! The deterministic single-process cluster simulator.
//!
//! All algorithm drivers ([`crate::algorithms`]) share this harness. It owns:
//!
//! * the synthetic train/test datasets for the configured workload,
//! * one model replica's worth of parameters **per worker**, plus a pool of compute
//!   engines: one `PaperModel` per round slot for the worker-parallel gradient phase
//!   (parameters are loaded before each worker's forward/backward pass) and one shared
//!   engine for evaluation and the sequential reference path,
//! * per-worker optimizers and `Δ(g_i)` trackers,
//! * the simulated clock: compute time comes from the device cost model, communication
//!   time from the network cost model, with identical accounting for every algorithm,
//! * LSSR bookkeeping and the evaluation history that becomes the [`RunReport`].
//!
//! Since the worker-parallel rounds PR, the per-worker gradient phase of every round
//! runs concurrently on the shared worker pool ([`selsync_tensor::par`]) through
//! [`Simulator::plan_round`] / [`Simulator::run_round`]: batch indices are drawn up
//! front from each worker's own cursor/RNG stream (so batch content is independent of
//! thread count), every worker's forward/backward runs on its own engine slot with the
//! dropout stream seeked to the canonical sequential position, and all shared state
//! (`BatchStats`, `Δ(g_i)` trackers, `max_delta_seen`) is merged in worker-index order
//! after the barrier. Reports are therefore bit-for-bit identical across
//! `SELSYNC_THREADS` values *and* to the sequential baseline path
//! ([`with_sequential_rounds`]); the *threaded* driver in [`crate::threaded`] exercises
//! the real parameter server / collectives for the same algorithm logic.

use crate::aggregation;
use crate::config::{AlgorithmSpec, TrainConfig};
use crate::policy::RoundSignal;
use crate::report::{EvalPoint, RunReport};
use crate::tracker::GradientTracker;
use selsync_data::dataset::Dataset;
use selsync_data::injection::DataInjection;
use selsync_data::noniid;
use selsync_data::partition::WorkerPartition;
use selsync_data::synthetic::{self, MixtureSpec, TokenSpec};
use selsync_metrics::lssr::LssrCounter;
use selsync_nn::cost;
use selsync_nn::model::{BatchStats, ModelKind, NominalFootprint, PaperModel, TaskKind};
use selsync_nn::optim::Optimizer;
use selsync_tensor::par::{self, SendPtr};
use selsync_tensor::rng::{self, SelRng};
use selsync_tensor::Tensor;

/// Per-worker replica state.
pub struct WorkerState {
    /// Worker id (rank).
    pub id: usize,
    /// Flat model parameters of this worker's replica.
    pub params: Vec<f32>,
    /// This worker's optimizer (momentum / Adam state is per worker, as on a real cluster).
    pub optimizer: Box<dyn Optimizer>,
    /// This worker's `Δ(g_i)` tracker.
    pub tracker: GradientTracker,
    /// IID traversal order: the dataset indices this worker walks circularly, derived
    /// from its DefDP/SelDP partition over the on-disk order and then shuffled per
    /// worker (mini-batches are mixed, exactly like a shuffling data loader over the
    /// worker's partition). `None` when training non-IID.
    pub iid_traversal: Option<Vec<usize>>,
    /// Non-IID shard indices (None when training IID).
    pub shard: Option<Vec<usize>>,
    shard_cursor: usize,
    /// Relative gradient change observed at the most recent step.
    pub last_delta: f32,
    /// Number of iterations this worker has completed (used by SSP).
    pub progress: usize,
}

/// One worker's slot in a training round, planned up front by
/// [`Simulator::plan_round`] and executed by [`Simulator::run_round`].
///
/// Batch indices are drawn at planning time, in worker-index order, from the worker's
/// own cursor/RNG stream — so the data each worker sees is a pure function of the run
/// configuration, never of how the round is later scheduled across threads.
#[derive(Debug, Default, Clone)]
pub struct WorkerStep {
    /// Worker id (rank).
    pub worker: usize,
    /// The mini-batch sample indices this worker trains on.
    pub indices: Vec<usize>,
    /// Bytes received through data-injection while assembling this batch.
    pub injected_bytes: u64,
    /// Global training-forward index (dropout-stream position) of this step.
    forward_index: u64,
}

/// Outcome of one [`Simulator::run_round`], merged in worker-index order after the
/// parallel barrier. Per-worker gradients stay inside the simulator
/// ([`Simulator::round_grads`] / [`Simulator::take_round_grads`]).
#[derive(Debug, Clone)]
pub struct RoundOutput {
    /// Per-step batch statistics, in step order.
    pub stats: Vec<BatchStats>,
    /// Per-step `Δ(g_i)`, in step order.
    pub deltas: Vec<f32>,
    /// Maximum `Δ(g_i)` of the round.
    pub max_delta: f32,
    /// Total data-injection bytes of the round.
    pub injected_bytes: u64,
}

impl RoundOutput {
    /// Mean training loss over the round's steps (0 for an empty round).
    pub fn mean_loss(&self) -> f32 {
        if self.stats.is_empty() {
            return 0.0;
        }
        self.stats.iter().map(|s| s.loss).sum::<f32>() / self.stats.len() as f32
    }

    /// The cluster-level [`RoundSignal`] a [`crate::policy::DeltaPolicy`] observes for
    /// this round: the round-maximum `Δ(g_i)`, the mean batch loss, the Δ moment
    /// feed (mean of `Δ(g_i)` and of `Δ(g_i)²`), and whether the round
    /// synchronized. Everything here is merged in worker-index order — the moment
    /// sums fold exactly like the threaded driver's elementwise worker-order vector
    /// all-reduce — so the signal, and therefore every policy decision, is
    /// bit-identical across backends and thread counts.
    pub fn signal(&self, iteration: usize, synced: bool) -> RoundSignal {
        let (delta_mean, delta_sq_mean) = if self.deltas.is_empty() {
            (0.0, 0.0)
        } else {
            let mut sum = 0.0f32;
            let mut sq_sum = 0.0f32;
            for &d in &self.deltas {
                sum += d;
                sq_sum += d * d;
            }
            let n = self.deltas.len() as f32;
            (sum / n, sq_sum / n)
        };
        RoundSignal {
            iteration,
            max_delta: self.max_delta,
            mean_loss: self.mean_loss(),
            delta_mean,
            delta_sq_mean,
            synced,
        }
    }
}

/// A compute engine of the round pool: one model replica plus reusable batch buffers.
/// [`Simulator::run_round`] partitions a round's slots into fixed contiguous chunks
/// (one engine per chunk, at most one engine per pool thread). Which engine runs a
/// slot therefore depends on the thread count — but never on scheduling — and engine
/// identity cannot affect values: parameters are loaded fresh per step, the dropout
/// stream is seeked to the step's global position, and a forward pass overwrites
/// every layer cache its backward reads.
struct RoundEngine {
    model: PaperModel,
    x: Tensor,
    y: Vec<usize>,
}

impl RoundEngine {
    fn new(kind: ModelKind, seed: u64) -> Self {
        RoundEngine {
            model: PaperModel::build(kind, seed),
            x: Tensor::zeros(0, 0),
            y: Vec::new(),
        }
    }
}

thread_local! {
    /// When set, [`Simulator::run_round`] on this thread processes its steps one by
    /// one on the shared evaluation engine — the pre-parallel sequential baseline
    /// path. Thread-local (not process-global) so one test's reference run can never
    /// leak onto another test's supposedly-parallel run under the parallel test
    /// harness.
    static SEQUENTIAL_ROUNDS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Run `f` with [`Simulator::run_round`] forced onto the sequential baseline path
/// (single shared engine, workers processed in order), restoring the previous setting
/// afterwards. The determinism tests compare this against the worker-parallel path at
/// several thread counts; the two must produce byte-identical reports.
pub fn with_sequential_rounds<R>(f: impl FnOnce() -> R) -> R {
    let previous = SEQUENTIAL_ROUNDS.with(|c| c.replace(true));
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            SEQUENTIAL_ROUNDS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(previous);
    f()
}

/// Assert the worker list of a round is strictly increasing and within the cluster —
/// the properties that make per-worker pointer writes disjoint *and in bounds* across
/// parallel round tasks.
fn assert_valid_round_workers(workers: impl Iterator<Item = usize>, num_workers: usize) {
    let mut prev: Option<usize> = None;
    for w in workers {
        assert!(
            prev.is_none_or(|p| p < w),
            "round workers must be strictly increasing (distinct)"
        );
        assert!(
            w < num_workers,
            "round worker {w} out of range ({num_workers} workers)"
        );
        prev = Some(w);
    }
}

/// The shared simulator.
pub struct Simulator {
    /// The run configuration.
    pub cfg: TrainConfig,
    model: PaperModel,
    /// Synthetic training set.
    pub train: Dataset,
    /// Synthetic held-out set.
    pub test: Dataset,
    /// Per-worker replica state.
    pub workers: Vec<WorkerState>,
    injection: Option<DataInjection>,
    lssr: LssrCounter,
    /// Step indices at which [`Self::account_step`] recorded a synchronization — the
    /// run's synchronization schedule (see [`RunReport::sync_rounds`]).
    sync_rounds: Vec<usize>,
    history: Vec<EvalPoint>,
    compute_time_s: f64,
    comm_time_s: f64,
    bytes_communicated: u64,
    /// RNG for cluster-level stochastic decisions (FedAvg participant selection,
    /// data-injection donor choice, SSP scheduling jitter).
    pub rng: SelRng,
    last_train_loss: f32,
    max_delta_seen: f32,
    /// The last iteration [`Self::begin_round`] processed (rejoin detection).
    last_round: Option<usize>,
    /// Per-slot compute engines for worker-parallel rounds (grown lazily to the
    /// largest round width seen).
    engines: Vec<RoundEngine>,
    /// Per-step flat gradients of the most recent [`Self::run_round`] (buffers reused
    /// round to round).
    round_grads: Vec<Vec<f32>>,
    /// Number of valid entries in [`Self::round_grads`] after the last round.
    last_round_len: usize,
    /// Worker id behind each slot of [`Self::round_grads`] (alignment checks for
    /// [`Self::apply_round_own`]).
    last_round_workers: Vec<usize>,
    /// Global training-forward counter: the canonical sequential position of the next
    /// forward pass, used to seek per-engine dropout streams.
    forwards_issued: u64,
    /// Reusable evaluation / sequential-path batch buffers.
    eval_indices: Vec<usize>,
    eval_x: Tensor,
    eval_y: Vec<usize>,
}

impl Simulator {
    /// Build a simulator (datasets, model, worker replicas) from a configuration.
    pub fn new(cfg: &TrainConfig) -> Self {
        let (train, test) = build_datasets(cfg);
        let model = PaperModel::build(cfg.model, cfg.seed);
        let init_params = model.params_flat();

        let injection = match cfg.algorithm {
            AlgorithmSpec::SelSync { injection, .. } => injection,
            _ => None,
        };

        // Non-IID shards (if configured) are built once over the training set.
        let shards: Option<Vec<Vec<usize>>> = cfg
            .non_iid_labels_per_worker
            .map(|labels| noniid::label_sharded(&train, cfg.workers, labels).per_worker);

        // IID partitions enumerate positions over the label-grouped ("on-disk") sample
        // order for classification tasks, and the natural order for the LM task.
        let iid_order = iid_sample_order(&train, &model.task);

        let workers = (0..cfg.workers)
            .map(|w| {
                let (iid_traversal, shard) = match &shards {
                    Some(s) => (None, Some(s[w].clone())),
                    None => (Some(worker_iid_traversal(cfg, &iid_order, w)), None),
                };
                let ewma_factor = (cfg.workers as f32 / 100.0).clamp(0.01, 1.0);
                WorkerState {
                    id: w,
                    params: init_params.clone(),
                    optimizer: cfg.optimizer.build(),
                    tracker: GradientTracker::new(
                        crate::tracker::GradStatistic::SqNorm,
                        ewma_factor,
                        cfg.ewma_window,
                    ),
                    iid_traversal,
                    shard,
                    shard_cursor: 0,
                    last_delta: 0.0,
                    progress: 0,
                }
            })
            .collect();

        // Compile comm-fault evictions into the membership schedule up front: every
        // presence query below (all algorithm drivers, round planning, trace
        // context) then sees fault-driven evictions exactly like scheduled crashes.
        // Idempotent — an evicted worker is absent from its eviction round on, so
        // recompiling cannot add further crashes.
        let mut cfg = cfg.clone();
        cfg.conditions = cfg.effective_conditions();
        let rng = rng::derived(cfg.seed, 0xC1A5);

        Simulator {
            cfg,
            model,
            train,
            test,
            workers,
            injection,
            lssr: LssrCounter::new(),
            sync_rounds: Vec::new(),
            history: Vec::new(),
            compute_time_s: 0.0,
            comm_time_s: 0.0,
            bytes_communicated: 0,
            rng,
            last_train_loss: 0.0,
            max_delta_seen: 0.0,
            last_round: None,
            engines: Vec::new(),
            round_grads: Vec::new(),
            last_round_len: 0,
            last_round_workers: Vec::new(),
            forwards_issued: 0,
            eval_indices: Vec::new(),
            eval_x: Tensor::zeros(0, 0),
            eval_y: Vec::new(),
        }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of scalar model parameters.
    pub fn param_dim(&self) -> usize {
        self.model.param_count()
    }

    /// Nominal paper-scale footprint of the configured model.
    pub fn nominal(&self) -> NominalFootprint {
        self.model.nominal
    }

    /// Whether larger test metrics are better for this workload.
    pub fn higher_is_better(&self) -> bool {
        self.model.task.higher_is_better()
    }

    /// Draw the next mini-batch of sample indices for `worker`, returning the indices
    /// and the number of bytes transferred for data-injection (0 without injection).
    pub fn next_batch(&mut self, worker: usize) -> (Vec<usize>, u64) {
        let mut indices = Vec::new();
        let bytes = self.fill_batch_indices(worker, &mut indices);
        (indices, bytes)
    }

    /// [`Self::next_batch`] into a caller-owned buffer (cleared first) — the zero-alloc
    /// planning path. Cursor and RNG advancement is identical to `next_batch`.
    pub fn fill_batch_indices(&mut self, worker: usize, out: &mut Vec<usize>) -> u64 {
        let batch = self.cfg.batch_size;
        out.clear();
        // Non-IID path (with or without injection).
        if self.workers[worker].shard.is_some() {
            if let Some(inj) = self.injection {
                let mut cursors: Vec<usize> = self.workers.iter().map(|w| w.shard_cursor).collect();
                let shards: Vec<&[usize]> = self
                    .workers
                    .iter()
                    .map(|w| w.shard.as_deref().unwrap_or(&[]))
                    .collect();
                let assembled = inj.assemble_batch(
                    worker,
                    &shards,
                    &mut cursors,
                    batch,
                    self.train.sample_bytes,
                    &mut self.rng,
                );
                for (w, c) in cursors.into_iter().enumerate() {
                    self.workers[w].shard_cursor = c;
                }
                out.extend_from_slice(&assembled.local_indices);
                out.extend(assembled.injected.iter().map(|&(_, i)| i));
                return assembled.bytes_received as u64;
            }
            // Plain non-IID: walk the worker's own shard circularly (borrowed in
            // place — no per-call shard clone).
            let w = &mut self.workers[worker];
            let shard = w.shard.as_ref().expect("non-IID worker must have a shard");
            let mut cursor = w.shard_cursor;
            for _ in 0..batch {
                out.push(shard[cursor % shard.len()]);
                cursor += 1;
            }
            w.shard_cursor = cursor % shard.len();
            return 0;
        }
        // IID path: walk the worker's (shuffled) DefDP/SelDP traversal circularly.
        let w = &mut self.workers[worker];
        let traversal = w
            .iid_traversal
            .as_ref()
            .expect("IID worker must have a traversal order");
        let mut cursor = w.shard_cursor;
        for _ in 0..batch {
            out.push(traversal[cursor % traversal.len()]);
            cursor += 1;
        }
        w.shard_cursor = cursor % traversal.len();
        0
    }

    /// Run a forward/backward pass for `worker` on the given samples, returning the
    /// batch statistics and the flat gradient. The worker's replica parameters are
    /// loaded into the shared compute engine first, and the dropout stream is seeked
    /// to the global forward counter (identical to letting the stateful stream run).
    pub fn compute_gradient(&mut self, worker: usize, indices: &[usize]) -> (BatchStats, Vec<f32>) {
        let (x, y) = self.train.batch(indices);
        self.model.set_params_flat(&self.workers[worker].params);
        self.model.seek_dropout(self.forwards_issued);
        self.forwards_issued += 1;
        let stats = self.model.forward_backward(&x, &y);
        self.last_train_loss = stats.loss;
        (stats, self.model.grads_flat())
    }

    /// Update `worker`'s `Δ(g_i)` tracker with this step's gradient and return the delta.
    pub fn track_delta(&mut self, worker: usize, grads: &[f32]) -> f32 {
        let delta = self.workers[worker].tracker.update(grads);
        self.workers[worker].last_delta = delta;
        self.max_delta_seen = self.max_delta_seen.max(delta);
        delta
    }

    /// Apply a gradient to `worker`'s replica through its optimizer at learning rate `lr`.
    pub fn apply_update(&mut self, worker: usize, grads: &[f32], lr: f32) {
        let w = &mut self.workers[worker];
        w.optimizer.step(&mut w.params, grads, lr);
        w.progress += 1;
    }

    // --- worker-parallel rounds ----------------------------------------------------

    /// Plan one training round for the given (strictly increasing) worker list: draw
    /// every worker's batch indices in worker order — so cursor and cluster-RNG
    /// streams advance exactly as the sequential loop did — and stamp each step with
    /// its global forward index. `steps` is reused across rounds (cleared and
    /// refilled, index buffers kept).
    pub fn plan_round(&mut self, present: &[usize], steps: &mut Vec<WorkerStep>) {
        assert_valid_round_workers(present.iter().copied(), self.workers.len());
        steps.truncate(present.len());
        while steps.len() < present.len() {
            steps.push(WorkerStep::default());
        }
        for (step, &w) in steps.iter_mut().zip(present.iter()) {
            step.worker = w;
            step.injected_bytes = self.fill_batch_indices(w, &mut step.indices);
            step.forward_index = self.forwards_issued;
            self.forwards_issued += 1;
        }
    }

    /// Execute the gradient phase of a planned round: every step's forward/backward
    /// pass and `Δ(g_i)` tracker update, spread across the worker pool (a fixed-chunk
    /// partition of the steps, one engine per chunk), then merge the shared-state
    /// updates in worker-index order.
    ///
    /// Per-step flat gradients land in [`Self::round_grads`]. Results are bit-identical
    /// for every thread count and to the sequential baseline ([`with_sequential_rounds`]):
    /// batches were drawn at planning time, engines seek the canonical dropout-stream
    /// position before each forward, kernels are order-preserving, every worker's
    /// tracker/optimizer state is its own, and a step's outcome is independent of
    /// *which* engine runs it (parameters are loaded fresh and the forward pass
    /// overwrites every layer cache its backward reads).
    pub fn run_round(&mut self, steps: &[WorkerStep]) -> RoundOutput {
        let n = steps.len();
        assert_valid_round_workers(steps.iter().map(|s| s.worker), self.workers.len());
        self.last_round_workers.clear();
        self.last_round_workers
            .extend(steps.iter().map(|s| s.worker));
        let mut output = RoundOutput {
            stats: vec![
                BatchStats {
                    loss: 0.0,
                    metric: 0.0
                };
                n
            ],
            deltas: vec![0.0f32; n],
            max_delta: 0.0,
            injected_bytes: 0,
        };
        self.last_round_len = n;
        if n == 0 {
            return output;
        }
        if self.round_grads.len() < n {
            self.round_grads.resize_with(n, Vec::new);
        }

        if SEQUENTIAL_ROUNDS.with(|c| c.get()) {
            // Reference path: the pre-parallel sequential baseline — one shared
            // engine, workers processed in order, stateful-equivalent dropout seeks.
            for (i, step) in steps.iter().enumerate() {
                self.train
                    .batch_into(&step.indices, &mut self.eval_x, &mut self.eval_y);
                self.model
                    .set_params_flat(&self.workers[step.worker].params);
                self.model.seek_dropout(step.forward_index);
                let stats = self.model.forward_backward(&self.eval_x, &self.eval_y);
                self.model.grads_flat_into(&mut self.round_grads[i]);
                let wstate = &mut self.workers[step.worker];
                let delta = wstate.tracker.update(&self.round_grads[i]);
                wstate.last_delta = delta;
                output.stats[i] = stats;
                output.deltas[i] = delta;
            }
        } else {
            // Fixed-chunk partition over the round's slots: task `t` owns steps
            // `[t*chunk, (t+1)*chunk)` and walks them in order on engine `t`, so at
            // most `threads` engines ever exist and the slot→engine map is a pure
            // function of the partition — never of scheduling. Engine identity cannot
            // affect values (see the method docs), so neither can the thread count.
            let threads = par::current_num_threads().clamp(1, n);
            let chunk = n.div_ceil(threads);
            let tasks = n.div_ceil(chunk);
            while self.engines.len() < tasks {
                self.engines
                    .push(RoundEngine::new(self.cfg.model, self.cfg.seed));
            }
            let engines_ptr = SendPtr(self.engines.as_mut_ptr());
            let workers_ptr = SendPtr(self.workers.as_mut_ptr());
            let grads_ptr = SendPtr(self.round_grads.as_mut_ptr());
            let stats_ptr = SendPtr(output.stats.as_mut_ptr());
            let deltas_ptr = SendPtr(output.deltas.as_mut_ptr());
            let train = &self.train;
            par::parallel_for(tasks, |t| {
                // SAFETY: each task owns engine `t` and a disjoint slot range (so the
                // grads/stats/deltas writes are disjoint), and worker ids are strictly
                // increasing and in bounds (asserted above) so the worker writes are
                // disjoint too; `parallel_for` blocks until all tasks finish, so the
                // borrows outlive every use.
                let engine = unsafe { &mut *engines_ptr.get().add(t) };
                let hi = ((t + 1) * chunk).min(n);
                for (i, step) in steps.iter().enumerate().take(hi).skip(t * chunk) {
                    let wstate = unsafe { &mut *workers_ptr.get().add(step.worker) };
                    let grads = unsafe { &mut *grads_ptr.get().add(i) };
                    train.batch_into(&step.indices, &mut engine.x, &mut engine.y);
                    engine.model.set_params_flat(&wstate.params);
                    engine.model.seek_dropout(step.forward_index);
                    let stats = engine.model.forward_backward(&engine.x, &engine.y);
                    engine.model.grads_flat_into(grads);
                    let delta = wstate.tracker.update(grads);
                    wstate.last_delta = delta;
                    unsafe {
                        *stats_ptr.get().add(i) = stats;
                        *deltas_ptr.get().add(i) = delta;
                    }
                }
            });
        }

        // Merge shared state in worker-index order, exactly like the sequential loop.
        for (i, step) in steps.iter().enumerate() {
            output.injected_bytes += step.injected_bytes;
            output.max_delta = output.max_delta.max(output.deltas[i]);
            self.max_delta_seen = self.max_delta_seen.max(output.deltas[i]);
        }
        if let Some(last) = output.stats.last() {
            self.last_train_loss = last.loss;
        }
        output
    }

    /// Per-step flat gradients of the most recent [`Self::run_round`], in step order.
    pub fn round_grads(&self) -> &[Vec<f32>] {
        &self.round_grads[..self.last_round_len]
    }

    /// Move the round-gradient buffers out of the simulator (for drivers that need to
    /// read them while mutating the simulator, e.g. SSP's interleaved global pushes).
    /// Return them with [`Self::restore_round_grads`] so the buffers keep being reused.
    pub fn take_round_grads(&mut self) -> Vec<Vec<f32>> {
        std::mem::take(&mut self.round_grads)
    }

    /// Hand the buffers from [`Self::take_round_grads`] back for reuse.
    pub fn restore_round_grads(&mut self, grads: Vec<Vec<f32>>) {
        self.round_grads = grads;
    }

    /// Apply each step's own gradient ([`Self::round_grads`]) to its worker's replica,
    /// in parallel across workers. Optimizer state is per worker and the per-element
    /// update order is unchanged, so the result is bit-identical to the sequential
    /// apply loop.
    pub fn apply_round_own(&mut self, steps: &[WorkerStep], lr: f32) {
        let n = steps.len();
        assert!(
            n <= self.last_round_len,
            "apply_round_own without run_round"
        );
        // Slot i of round_grads belongs to the i-th worker of the last run_round;
        // applying a different or shifted step list would silently train the wrong
        // workers, so require exact alignment.
        for (i, step) in steps.iter().enumerate() {
            assert_eq!(
                step.worker, self.last_round_workers[i],
                "apply_round_own steps must align with the last run_round"
            );
        }
        let Simulator {
            workers,
            round_grads,
            ..
        } = self;
        // When the cluster is narrower than the pool, worker-level tasks would waste
        // threads (an outer parallel_for marks its tasks in-pool, serialising the
        // optimizers' elementwise sweeps); a sequential worker loop then keeps the
        // PR 2 element-level parallelism. Either arrangement produces the same bytes.
        if n < par::current_num_threads() {
            for (step, grads) in steps.iter().zip(round_grads.iter()) {
                let w = &mut workers[step.worker];
                w.optimizer.step(&mut w.params, grads, lr);
                w.progress += 1;
            }
            return;
        }
        let workers_ptr = SendPtr(workers.as_mut_ptr());
        let grads: &[Vec<f32>] = round_grads;
        par::parallel_for(n, |i| {
            // SAFETY: worker ids are strictly increasing and in bounds — disjoint
            // per task.
            let w = unsafe { &mut *workers_ptr.get().add(steps[i].worker) };
            w.optimizer.step(&mut w.params, &grads[i], lr);
            w.progress += 1;
        });
    }

    /// Apply one shared gradient (e.g. the round average) to every listed worker's
    /// replica, in parallel across workers.
    pub fn apply_round_shared(&mut self, worker_ids: &[usize], grads: &[f32], lr: f32) {
        assert_valid_round_workers(worker_ids.iter().copied(), self.workers.len());
        // Same narrow-cluster fallback as apply_round_own: keep element-level
        // parallelism when there are fewer workers than pool threads.
        if worker_ids.len() < par::current_num_threads() {
            for &id in worker_ids {
                let w = &mut self.workers[id];
                w.optimizer.step(&mut w.params, grads, lr);
                w.progress += 1;
            }
            return;
        }
        let workers_ptr = SendPtr(self.workers.as_mut_ptr());
        par::parallel_for(worker_ids.len(), |i| {
            // SAFETY: worker ids are strictly increasing and in bounds — disjoint
            // per task.
            let w = unsafe { &mut *workers_ptr.get().add(worker_ids[i]) };
            w.optimizer.step(&mut w.params, grads, lr);
            w.progress += 1;
        });
    }

    /// Average of all worker replicas' parameters (borrows the replicas — no per-replica
    /// clone fan-out).
    pub fn average_params(&self) -> Vec<f32> {
        let replicas: Vec<&[f32]> = self.workers.iter().map(|w| w.params.as_slice()).collect();
        aggregation::average(&replicas)
    }

    /// Average of a subset of workers' parameters (FedAvg participation).
    pub fn average_params_of(&self, worker_ids: &[usize]) -> Vec<f32> {
        let replicas: Vec<&[f32]> = self.workers.iter().map(|w| w.params.as_slice()).collect();
        aggregation::average_present(&replicas, worker_ids)
    }

    /// Average of a subset of workers' parameters into a caller-owned buffer, so
    /// per-round aggregation reuses one allocation across the whole run.
    pub fn average_params_of_into(&self, worker_ids: &[usize], out: &mut Vec<f32>) {
        let replicas: Vec<&[f32]> = self.workers.iter().map(|w| w.params.as_slice()).collect();
        aggregation::average_present_into(&replicas, worker_ids, out);
    }

    /// Overwrite every worker replica with `params` (the post-aggregation broadcast).
    pub fn set_all_params(&mut self, params: &[f32]) {
        for w in &mut self.workers {
            w.params.copy_from_slice(params);
        }
    }

    /// Current replica divergence across workers (diagnostic for the PA-vs-GA analysis).
    pub fn replica_divergence(&self) -> f32 {
        let replicas: Vec<&[f32]> = self.workers.iter().map(|w| w.params.as_slice()).collect();
        aggregation::replica_divergence(&replicas)
    }

    /// Learning rate in effect at `iteration`.
    pub fn lr_at(&self, iteration: usize) -> f32 {
        self.cfg.lr.lr_at(self.cfg.epoch_of(iteration), iteration)
    }

    /// Evaluate the given parameters on (a capped subset of) the held-out set.
    ///
    /// The evaluation chunks are spread across the worker pool (a fixed contiguous
    /// chunk-range per engine, like [`Self::run_round`]): each chunk's statistics are
    /// a pure function of `params` and the chunk's samples (eval-mode forwards touch
    /// no RNG stream and overwrite every cache they read), and the per-chunk partial
    /// sums are merged sequentially in chunk-index order with the same `f64`
    /// accumulators — so the result is bit-identical to the sequential baseline for
    /// every thread count.
    pub fn evaluate_params(&mut self, params: &[f32]) -> BatchStats {
        let n = self.cfg.eval_samples.min(self.test.len()).max(1);
        let chunk = 128usize;
        let n_chunks = n.div_ceil(chunk);
        let threads = par::current_num_threads();
        let chunk_stats = if SEQUENTIAL_ROUNDS.with(|c| c.get()) || threads <= 1 || n_chunks <= 1 {
            // Sequential reference path: one shared engine, chunks in order.
            self.model.set_params_flat(params);
            let mut partials = Vec::with_capacity(n_chunks);
            for c in 0..n_chunks {
                let start = c * chunk;
                let end = (start + chunk).min(n);
                self.eval_indices.clear();
                self.eval_indices.extend(start..end);
                self.test
                    .batch_into(&self.eval_indices, &mut self.eval_x, &mut self.eval_y);
                partials.push(self.model.evaluate(&self.eval_x, &self.eval_y));
            }
            partials
        } else {
            // Fixed chunk-range partition: task `t` owns chunks
            // `[t*span, (t+1)*span)` and walks them in order on engine `t`.
            let tasks = threads.min(n_chunks);
            let span = n_chunks.div_ceil(tasks);
            let tasks = n_chunks.div_ceil(span);
            while self.engines.len() < tasks {
                self.engines
                    .push(RoundEngine::new(self.cfg.model, self.cfg.seed));
            }
            let mut partials = vec![
                BatchStats {
                    loss: 0.0,
                    metric: 0.0
                };
                n_chunks
            ];
            let engines_ptr = SendPtr(self.engines.as_mut_ptr());
            let partials_ptr = SendPtr(partials.as_mut_ptr());
            let test = &self.test;
            par::parallel_for(tasks, |t| {
                // SAFETY: each task owns engine `t` and a disjoint chunk range, so
                // the partial-stat writes are disjoint; `parallel_for` blocks until
                // all tasks finish, so the borrows outlive every use.
                let engine = unsafe { &mut *engines_ptr.get().add(t) };
                engine.model.set_params_flat(params);
                let mut indices = Vec::with_capacity(chunk);
                for c in (t * span)..((t + 1) * span).min(n_chunks) {
                    let start = c * chunk;
                    let end = (start + chunk).min(n);
                    indices.clear();
                    indices.extend(start..end);
                    test.batch_into(&indices, &mut engine.x, &mut engine.y);
                    let stats = engine.model.evaluate(&engine.x, &engine.y);
                    unsafe {
                        *partials_ptr.get().add(c) = stats;
                    }
                }
            });
            partials
        };
        let mut loss_acc = 0.0f64;
        let mut metric_acc = 0.0f64;
        let mut seen = 0usize;
        for (c, stats) in chunk_stats.iter().enumerate() {
            let count = ((c * chunk + chunk).min(n)) - c * chunk;
            loss_acc += stats.loss as f64 * count as f64;
            metric_acc += stats.metric as f64 * count as f64;
            seen += count;
        }
        BatchStats {
            loss: (loss_acc / seen as f64) as f32,
            metric: (metric_acc / seen as f64) as f32,
        }
    }

    /// Per-iteration compute time (seconds) for one worker's batch on the configured
    /// device, using the nominal (paper-scale) per-sample FLOPs.
    pub fn step_compute_seconds(&self) -> f64 {
        cost::compute_time_ms(&self.model.nominal, self.cfg.batch_size, &self.cfg.device) / 1e3
    }

    /// Seconds for a full PS synchronization of the nominal model across `participants`.
    pub fn ps_sync_seconds(&self, participants: usize) -> f64 {
        self.cfg
            .network
            .ps_sync_time(self.model.nominal.wire_bytes, participants)
    }

    /// Seconds for the 1-bit status all-gather.
    pub fn status_allgather_seconds(&self) -> f64 {
        self.cfg.network.status_allgather_time(self.cfg.workers)
    }

    /// Seconds for a one-way PS push or pull by a single worker (SSP).
    pub fn ps_one_way_seconds(&self) -> f64 {
        self.cfg
            .network
            .ps_one_way_time(self.model.nominal.wire_bytes)
    }

    // --- cluster-condition hooks (heterogeneity and fault injection) ---------------

    /// Compute-time multiplier of `worker` at `iteration` under the configured cluster
    /// conditions (1.0 on a homogeneous, fault-free cluster).
    pub fn compute_multiplier(&self, worker: usize, iteration: usize) -> f64 {
        self.cfg.conditions.compute_multiplier(worker, iteration)
    }

    /// Whether `worker` is alive at `iteration`.
    pub fn is_present(&self, worker: usize, iteration: usize) -> bool {
        self.cfg.conditions.is_present(worker, iteration)
    }

    /// The alive workers at `iteration`, in worker order.
    pub fn present_workers(&self, iteration: usize) -> Vec<usize> {
        self.cfg
            .conditions
            .present_workers(self.workers.len(), iteration)
    }

    /// Wall-clock seconds of one synchronous compute round at `iteration`: the batch
    /// compute time stretched by the slowest present worker's multiplier.
    pub fn round_compute_seconds(&self, iteration: usize) -> f64 {
        self.step_compute_seconds()
            * self
                .cfg
                .conditions
                .slowest_present_multiplier(self.workers.len(), iteration)
    }

    /// The network model in effect at `iteration` (base model plus active degradations).
    pub fn network_at(&self, iteration: usize) -> selsync_comm::NetworkModel {
        self.cfg.conditions.network_at(iteration, &self.cfg.network)
    }

    /// Seconds for a full PS synchronization across `participants` under the network
    /// conditions at `iteration`.
    pub fn ps_sync_seconds_at(&self, iteration: usize, participants: usize) -> f64 {
        self.network_at(iteration)
            .ps_sync_time(self.model.nominal.wire_bytes, participants)
    }

    /// Seconds for the 1-bit status all-gather among `participants` under the network
    /// conditions at `iteration`.
    pub fn status_allgather_seconds_at(&self, iteration: usize, participants: usize) -> f64 {
        self.network_at(iteration)
            .status_allgather_time(participants)
    }

    /// Seconds for a one-way PS push or pull under the network conditions at `iteration`.
    pub fn ps_one_way_seconds_at(&self, iteration: usize) -> f64 {
        self.network_at(iteration)
            .ps_one_way_time(self.model.nominal.wire_bytes)
    }

    /// Overwrite the replicas of `worker_ids` with `params` (a broadcast restricted to
    /// the present workers; crashed workers keep their stale state).
    pub fn set_params_of(&mut self, worker_ids: &[usize], params: &[f32]) {
        for &w in worker_ids {
            self.workers[w].params.copy_from_slice(params);
        }
    }

    /// Bring a rejoining worker back: overwrite its replica with `params` (the PS pull
    /// on rejoin) and reset its optimizer and `Δ(g_i)` tracker state, neither of which
    /// survived the crash (the threaded driver restarts its tracker the same way).
    pub fn rejoin_worker(&mut self, worker: usize, params: &[f32]) {
        self.workers[worker].params.copy_from_slice(params);
        self.workers[worker].optimizer.reset();
        self.workers[worker].tracker.reset();
        self.workers[worker].last_delta = 0.0;
    }

    /// Begin a synchronous round at `iteration` for drivers with a PS rejoin path:
    /// returns the present workers, and for every worker that was absent at the
    /// previously processed round and is back now, performs the rejoin pull from
    /// `global` ([`Self::rejoin_worker`]) and accounts the one-way transfer. Returns
    /// `(present, rejoin_comm_seconds, rejoin_bytes)` for the caller to fold into the
    /// round's accounting.
    pub fn begin_round(&mut self, iteration: usize, global: &[f32]) -> (Vec<usize>, f64, u64) {
        let present = self.present_workers(iteration);
        let mut comm_s = 0.0f64;
        let mut bytes = 0u64;
        if let Some(prev) = self.last_round {
            for &w in &present {
                if !self.is_present(w, prev) {
                    self.rejoin_worker(w, global);
                    comm_s += self.ps_one_way_seconds_at(iteration);
                    bytes += self.nominal().wire_bytes;
                    if self.cfg.trace.is_enabled() {
                        // Mirror the threaded driver's pull event: under scheduled
                        // pulls the source is the last sync round (what the PS
                        // snapshot ring would return); wall-clock pulls have an
                        // inherently timing-dependent source, recorded as `None` so
                        // both backends' logs stay byte-comparable.
                        let (pull, from) = match self.cfg.rejoin_pull {
                            crate::config::RejoinPull::Scheduled => (
                                selsync_tracelog::PullKind::Scheduled,
                                self.sync_rounds.last().copied(),
                            ),
                            crate::config::RejoinPull::WallClock => {
                                (selsync_tracelog::PullKind::WallClock, None)
                            }
                        };
                        self.cfg.trace.record(selsync_tracelog::Event::RejoinPull {
                            round: iteration,
                            worker: w,
                            pull,
                            from,
                        });
                    }
                }
            }
        }
        self.last_round = Some(iteration);
        (present, comm_s, bytes)
    }

    /// Account one step's simulated time and bytes. `sync_bytes` should include every
    /// parameter/gradient transfer of the step (data-injection bytes are added through
    /// [`Self::account_injection`]).
    pub fn account_step(&mut self, compute_s: f64, comm_s: f64, sync_bytes: u64, synced: bool) {
        self.compute_time_s += compute_s;
        self.comm_time_s += comm_s;
        self.bytes_communicated += sync_bytes;
        if synced {
            // The step index is the count of previously accounted steps — for drivers
            // that account exactly one step per iteration (all of them today), this is
            // the training iteration.
            self.sync_rounds.push(self.lssr.total() as usize);
            self.lssr.record_sync();
        } else {
            self.lssr.record_local();
        }
    }

    /// Account bytes moved by data-injection (already included in step time by callers
    /// that add `p2p` time; kept separate so reports can distinguish it).
    pub fn account_injection(&mut self, bytes: u64) {
        self.bytes_communicated += bytes;
    }

    /// Record an evaluation point for `iteration` using the supplied parameters.
    pub fn record_eval(&mut self, iteration: usize, params: &[f32], cluster_delta: f32) {
        let stats = self.evaluate_params(params);
        let point = EvalPoint {
            iteration,
            sim_time_s: self.compute_time_s + self.comm_time_s,
            train_loss: self.last_train_loss,
            test_loss: stats.loss,
            test_metric: stats.metric,
            delta_g: cluster_delta,
            lr: self.lr_at(iteration),
        };
        self.history.push(point);
    }

    /// Whether `iteration` is an evaluation iteration.
    pub fn should_eval(&self, iteration: usize) -> bool {
        iteration.is_multiple_of(self.cfg.eval_every.max(1)) || iteration + 1 == self.cfg.iterations
    }

    /// Simulated time elapsed so far.
    pub fn elapsed_seconds(&self) -> f64 {
        self.compute_time_s + self.comm_time_s
    }

    /// Consume the simulator and produce the run report.
    pub fn finalize(self, algorithm: String) -> RunReport {
        let higher = self.higher_is_better();
        let last = self.history.last().copied();
        let best = if higher {
            self.history
                .iter()
                .map(|p| p.test_metric)
                .fold(f32::NEG_INFINITY, f32::max)
        } else {
            self.history
                .iter()
                .map(|p| p.test_metric)
                .fold(f32::INFINITY, f32::min)
        };
        RunReport {
            algorithm,
            model: self.cfg.model,
            higher_is_better: higher,
            iterations: self.cfg.iterations,
            local_steps: self.lssr.local_steps,
            sync_steps: self.lssr.sync_steps,
            sync_rounds: self.sync_rounds,
            lssr: self.lssr.lssr(),
            final_metric: last.map(|p| p.test_metric).unwrap_or(0.0),
            best_metric: if self.history.is_empty() { 0.0 } else { best },
            final_loss: last.map(|p| p.test_loss).unwrap_or(f32::NAN),
            max_delta: self.max_delta_seen,
            sim_time_s: self.compute_time_s + self.comm_time_s,
            comm_time_s: self.comm_time_s,
            compute_time_s: self.compute_time_s,
            bytes_communicated: self.bytes_communicated,
            // Stateless drivers never switch regimes; the SelSync driver overwrites
            // these from its policy after finalization.
            policy_switches: 0,
            switch_rounds: Vec::new(),
            history: self.history,
        }
    }

    // --- checkpoint / resume -------------------------------------------------------

    /// Write the simulator's mutable state into `ckpt` as a `sim` section plus one
    /// `worker<k>` section per worker. Must be called at a round boundary (after the
    /// round's updates, accounting and evaluation) — scratch buffers, engines and the
    /// round-gradient pool are rebuild-on-demand and deliberately not stored.
    pub fn export_checkpoint_sections(&self, ckpt: &mut crate::checkpoint::Checkpoint) {
        use crate::checkpoint::Section;
        let mut s = Section::new("sim");
        s.push_int(self.rng.word_pos());
        s.push_int(self.lssr.local_steps);
        s.push_int(self.lssr.sync_steps);
        let sync_rounds: Vec<u64> = self.sync_rounds.iter().map(|&r| r as u64).collect();
        s.push_ints(&sync_rounds);
        s.push_f64(self.compute_time_s);
        s.push_f64(self.comm_time_s);
        s.push_int(self.bytes_communicated);
        s.push_f32(self.last_train_loss);
        s.push_f32(self.max_delta_seen);
        s.push_opt_int(self.last_round.map(|r| r as u64));
        s.push_int(self.forwards_issued);
        s.push_usize(self.history.len());
        for p in &self.history {
            s.push_usize(p.iteration);
            s.push_f64(p.sim_time_s);
            s.push_f32(p.train_loss);
            s.push_f32(p.test_loss);
            s.push_f32(p.test_metric);
            s.push_f32(p.delta_g);
            s.push_f32(p.lr);
        }
        ckpt.add_section(s);

        for w in &self.workers {
            let mut s = Section::new(format!("worker{}", w.id));
            s.push_f32s(&w.params);
            let opt = w.optimizer.export_state();
            s.push_int(opt.t);
            s.push_usize(opt.buffers.len());
            for buf in &opt.buffers {
                s.push_f32s(buf);
            }
            let tracker = w.tracker.export_state();
            s.push_f32s(&tracker.ewma_history);
            s.push_opt_f32(tracker.ewma_smoothed);
            s.push_opt_f32(tracker.previous_smoothed);
            s.push_f32(tracker.last_delta);
            s.push_f32(tracker.max_delta);
            s.push_int(tracker.steps);
            s.push_usize(w.shard_cursor);
            s.push_f32(w.last_delta);
            s.push_usize(w.progress);
            ckpt.add_section(s);
        }
    }

    /// Restore state written by [`Self::export_checkpoint_sections`] onto a freshly
    /// built simulator for the same configuration.
    pub fn restore_checkpoint_sections(&mut self, ckpt: &crate::checkpoint::Checkpoint) {
        let mut s = ckpt.read_section("sim");
        self.rng.set_word_pos(s.int());
        self.lssr.local_steps = s.int();
        self.lssr.sync_steps = s.int();
        self.sync_rounds = s.ints().into_iter().map(|r| r as usize).collect();
        self.compute_time_s = s.f64();
        self.comm_time_s = s.f64();
        self.bytes_communicated = s.int();
        self.last_train_loss = s.f32();
        self.max_delta_seen = s.f32();
        self.last_round = s.opt_int().map(|r| r as usize);
        self.forwards_issued = s.int();
        let n_history = s.usize();
        self.history = (0..n_history)
            .map(|_| EvalPoint {
                iteration: s.usize(),
                sim_time_s: s.f64(),
                train_loss: s.f32(),
                test_loss: s.f32(),
                test_metric: s.f32(),
                delta_g: s.f32(),
                lr: s.f32(),
            })
            .collect();
        s.finish();

        for w in &mut self.workers {
            let mut s = ckpt.read_section(&format!("worker{}", w.id));
            w.params = s.f32s();
            let t = s.int();
            let n_buffers = s.usize();
            let buffers: Vec<Vec<f32>> = (0..n_buffers).map(|_| s.f32s()).collect();
            w.optimizer
                .load_state(&selsync_nn::optim::OptimizerState { t, buffers });
            let tracker = crate::tracker::TrackerState {
                ewma_history: s.f32s(),
                ewma_smoothed: s.opt_f32(),
                previous_smoothed: s.opt_f32(),
                last_delta: s.f32(),
                max_delta: s.f32(),
                steps: s.int(),
            };
            w.tracker.restore_state(&tracker);
            w.shard_cursor = s.usize();
            w.last_delta = s.f32();
            w.progress = s.usize();
            s.finish();
        }
    }

    /// Snapshot of a named layer's weights from the given parameters (used by the
    /// weight-distribution figure, Fig. 11). Returns the flat weights of the `idx`-th
    /// parameterised layer.
    pub fn layer_weights(&mut self, params: &[f32], idx: usize) -> Vec<f32> {
        use selsync_nn::layer::Layer;
        self.model.set_params_flat(params);
        let tensors = self.model.network().params();
        tensors
            .get(idx)
            .map(|t| t.data().to_vec())
            .unwrap_or_default()
    }
}

/// The "on-disk" sample order the IID DefDP/SelDP partitions enumerate positions over:
/// label-grouped for classification tasks, natural order for the LM task. Shared by the
/// simulator and the threaded driver so both walk identical batch streams.
pub fn iid_sample_order(train: &Dataset, task: &TaskKind) -> Vec<usize> {
    match task {
        TaskKind::Classification { .. } => {
            let mut order: Vec<usize> = (0..train.len()).collect();
            order.sort_by_key(|&i| (train.targets()[i], i));
            order
        }
        TaskKind::LanguageModel { .. } => (0..train.len()).collect(),
    }
}

/// The circular mini-batch traversal worker `w` walks when training IID: positions from
/// its DefDP/SelDP partition, mapped through the on-disk order ([`iid_sample_order`])
/// and shuffled per worker (a shuffling data loader over the worker's partition). A
/// pure function of the run configuration — the simulator and the threaded driver both
/// derive it, so their per-worker batch streams are identical.
pub fn worker_iid_traversal(cfg: &TrainConfig, iid_order: &[usize], w: usize) -> Vec<usize> {
    let part = WorkerPartition::build(cfg.partition, iid_order.len(), cfg.workers, w);
    let order: Vec<usize> = part.order().iter().map(|&p| iid_order[p]).collect();
    let mut worker_rng = rng::derived(cfg.seed, 0x0D_A7A0 + w as u64);
    let perm = rng::permutation(&mut worker_rng, order.len());
    perm.into_iter().map(|p| order[p]).collect()
}

/// The circular mini-batch traversal worker `w` walks under the configured data
/// regime: its label shard when `non_iid_labels_per_worker` is set (the exact
/// per-worker index list [`Simulator::new`] builds through
/// [`noniid::label_sharded`], walked in shard order like the simulator's
/// non-IID cursor), its shuffled IID partition otherwise. The threaded and
/// multi-process drivers derive their batch streams from this, so all three
/// backends walk identical samples on IID *and* non-IID runs. (Data-injection
/// draws from the simulator's cluster RNG and stays simulator-only.)
pub fn worker_traversal(
    cfg: &TrainConfig,
    train: &Dataset,
    iid_order: &[usize],
    w: usize,
) -> Vec<usize> {
    match cfg.non_iid_labels_per_worker {
        Some(labels) => {
            let mut split = noniid::label_sharded(train, cfg.workers, labels);
            split.per_worker.swap_remove(w)
        }
        None => worker_iid_traversal(cfg, iid_order, w),
    }
}

/// Build the synthetic train/test datasets for the configured workload — the single
/// source of truth for what every backend trains on (the simulator, the threaded
/// driver, and the bench harness all share it).
pub fn build_datasets(cfg: &TrainConfig) -> (Dataset, Dataset) {
    let model = PaperModel::build(cfg.model, cfg.seed);
    match model.task {
        TaskKind::Classification { .. } => {
            let spec = match cfg.model {
                ModelKind::ResNetLike => {
                    MixtureSpec::cifar10_like(cfg.train_samples + cfg.test_samples)
                }
                ModelKind::VggLike => {
                    MixtureSpec::cifar100_like(cfg.train_samples + cfg.test_samples)
                }
                _ => MixtureSpec::imagenet_like(cfg.train_samples + cfg.test_samples),
            };
            let all = synthetic::gaussian_mixture(&spec, cfg.seed ^ 0xDA7A);
            let frac = cfg.train_samples as f32 / (cfg.train_samples + cfg.test_samples) as f32;
            all.split(frac)
        }
        TaskKind::LanguageModel { .. } => {
            let spec = TokenSpec::wikitext_like(cfg.train_samples + cfg.test_samples);
            let all = synthetic::markov_tokens(&spec, cfg.seed ^ 0xDA7A);
            let frac = cfg.train_samples as f32 / (cfg.train_samples + cfg.test_samples) as f32;
            all.split(frac)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_data::partition::PartitionScheme;

    fn small_cfg() -> TrainConfig {
        let mut cfg = TrainConfig::small(ModelKind::ResNetLike, 4);
        cfg.train_samples = 512;
        cfg.test_samples = 128;
        cfg.iterations = 20;
        cfg
    }

    #[test]
    fn simulator_builds_consistent_state() {
        let cfg = small_cfg();
        let sim = Simulator::new(&cfg);
        assert_eq!(sim.num_workers(), 4);
        assert!(sim.param_dim() > 0);
        assert_eq!(sim.train.len(), 512);
        assert_eq!(sim.test.len(), 128);
        // All replicas start identical.
        assert_eq!(sim.replica_divergence(), 0.0);
    }

    #[test]
    fn next_batch_respects_batch_size_and_partition() {
        let mut cfg = small_cfg();
        cfg.partition = PartitionScheme::DefDp;
        let mut sim = Simulator::new(&cfg);
        let (idx, bytes) = sim.next_batch(1);
        assert_eq!(idx.len(), cfg.batch_size);
        assert_eq!(bytes, 0);
        // DefDP enumerates a contiguous chunk of the label-grouped order, so a worker's
        // batch covers only a few of the 10 labels (the Fig. 9 failure mode).
        let mut labels: Vec<usize> = idx.iter().map(|&i| sim.train.targets()[i]).collect();
        labels.sort_unstable();
        labels.dedup();
        assert!(
            labels.len() <= 4,
            "DefDP batch should be label-skewed, saw {labels:?}"
        );
    }

    #[test]
    fn seldp_batches_cover_all_labels_over_time() {
        let mut cfg = small_cfg();
        cfg.partition = PartitionScheme::SelDp;
        let mut sim = Simulator::new(&cfg);
        let mut seen = std::collections::HashSet::new();
        // One full pass over the SelDP queue touches every label.
        for _ in 0..(sim.train.len() / cfg.batch_size) {
            let (idx, _) = sim.next_batch(0);
            for i in idx {
                seen.insert(sim.train.targets()[i]);
            }
        }
        assert_eq!(seen.len(), sim.train.num_classes);
    }

    #[test]
    fn compute_and_apply_update_changes_only_that_worker() {
        let cfg = small_cfg();
        let mut sim = Simulator::new(&cfg);
        let (idx, _) = sim.next_batch(0);
        let (_, grads) = sim.compute_gradient(0, &idx);
        assert!(grads.iter().any(|&g| g != 0.0));
        sim.apply_update(0, &grads, 0.05);
        assert!(sim.replica_divergence() > 0.0);
        // Averaging and broadcasting collapses divergence again.
        let avg = sim.average_params();
        sim.set_all_params(&avg);
        assert_eq!(sim.replica_divergence(), 0.0);
    }

    #[test]
    fn accounting_distinguishes_local_and_sync_steps() {
        let cfg = small_cfg();
        let mut sim = Simulator::new(&cfg);
        sim.account_step(0.1, 0.0, 0, false);
        sim.account_step(0.1, 2.0, 1_000, true);
        let report = sim.finalize("test".into());
        assert_eq!(report.local_steps, 1);
        assert_eq!(report.sync_steps, 1);
        assert!((report.lssr - 0.5).abs() < 1e-9);
        assert!((report.sim_time_s - 2.2).abs() < 1e-9);
        assert_eq!(report.bytes_communicated, 1_000);
    }

    #[test]
    fn evaluation_produces_finite_metrics() {
        let cfg = small_cfg();
        let mut sim = Simulator::new(&cfg);
        let params = sim.workers[0].params.clone();
        let stats = sim.evaluate_params(&params);
        assert!(stats.loss.is_finite());
        assert!(stats.metric >= 0.0);
    }

    #[test]
    fn timing_helpers_are_positive_and_ordered() {
        let cfg = small_cfg();
        let sim = Simulator::new(&cfg);
        assert!(sim.step_compute_seconds() > 0.0);
        assert!(sim.ps_sync_seconds(16) > sim.ps_sync_seconds(4));
        assert!(sim.status_allgather_seconds() < sim.ps_sync_seconds(4));
    }

    #[test]
    fn run_round_matches_the_legacy_per_worker_calls() {
        // plan_round + run_round + apply_round_own on one simulator must equal the
        // legacy next_batch / compute_gradient / track_delta / apply_update loop on a
        // twin, byte for byte — including cursor/RNG streams across several rounds.
        let cfg = small_cfg();
        let mut a = Simulator::new(&cfg);
        let mut b = Simulator::new(&cfg);
        let present: Vec<usize> = (0..cfg.workers).collect();
        let mut steps = Vec::new();
        for _ in 0..3 {
            a.plan_round(&present, &mut steps);
            let round = a.run_round(&steps);
            a.apply_round_own(&steps, 0.05);

            for (i, &w) in present.iter().enumerate() {
                let (idx, inj) = b.next_batch(w);
                assert_eq!(idx, steps[i].indices, "worker {w} batch");
                assert_eq!(inj, steps[i].injected_bytes);
                let (stats, g) = b.compute_gradient(w, &idx);
                assert_eq!(stats, round.stats[i], "worker {w} stats");
                assert_eq!(g, a.round_grads()[i], "worker {w} grads");
                let d = b.track_delta(w, &g);
                assert_eq!(d, round.deltas[i], "worker {w} delta");
                b.apply_update(w, &g, 0.05);
            }
            for &w in &present {
                assert_eq!(
                    a.workers[w].params, b.workers[w].params,
                    "worker {w} params"
                );
            }
        }
    }

    #[test]
    fn sequential_rounds_mode_matches_the_parallel_engines() {
        let cfg = small_cfg();
        let present: Vec<usize> = (0..cfg.workers).collect();
        let mut steps_a = Vec::new();
        let mut steps_b = Vec::new();
        let mut a = Simulator::new(&cfg);
        let mut b = Simulator::new(&cfg);
        a.plan_round(&present, &mut steps_a);
        b.plan_round(&present, &mut steps_b);
        let parallel = a.run_round(&steps_a);
        let sequential = with_sequential_rounds(|| b.run_round(&steps_b));
        assert_eq!(format!("{parallel:?}"), format!("{sequential:?}"));
        assert_eq!(a.round_grads(), b.round_grads());
    }

    #[test]
    fn parallel_evaluation_matches_the_sequential_baseline_bitwise() {
        let mut cfg = small_cfg();
        cfg.eval_samples = 300; // 3 chunks: exercises the partial-sum merge
        let mut a = Simulator::new(&cfg);
        let mut b = Simulator::new(&cfg);
        let params = a.workers[0].params.clone();
        let parallel = a.evaluate_params(&params);
        let sequential = with_sequential_rounds(|| b.evaluate_params(&params));
        assert_eq!(parallel.loss.to_bits(), sequential.loss.to_bits());
        assert_eq!(parallel.metric.to_bits(), sequential.metric.to_bits());
        // Evaluation must not perturb training state.
        assert_eq!(a.forwards_issued, 0);
        let pos_before = a.rng.word_pos();
        let _ = a.evaluate_params(&params);
        assert_eq!(a.rng.word_pos(), pos_before);
    }

    #[test]
    fn checkpoint_sections_round_trip_and_continue_bit_identically() {
        let cfg = small_cfg();
        let mut a = Simulator::new(&cfg);
        let present: Vec<usize> = (0..cfg.workers).collect();
        let mut steps = Vec::new();
        for it in 0..4 {
            a.plan_round(&present, &mut steps);
            let _ = a.run_round(&steps);
            a.apply_round_own(&steps, 0.05);
            a.account_step(0.1, 0.2, 64, it % 2 == 0);
        }
        let params = a.workers[0].params.clone();
        a.record_eval(3, &params, 0.01);

        let mut ckpt = crate::checkpoint::Checkpoint::new("sim", 1, 3);
        a.export_checkpoint_sections(&mut ckpt);
        // Codec round-trip in the middle, so what continues is what a file stores.
        let ckpt = crate::checkpoint::Checkpoint::decode(&ckpt.encode()).expect("decode");
        let mut b = Simulator::new(&cfg);
        b.restore_checkpoint_sections(&ckpt);

        assert_eq!(b.rng.word_pos(), a.rng.word_pos());
        assert_eq!(b.forwards_issued, a.forwards_issued);
        assert_eq!(b.sync_rounds, a.sync_rounds);
        assert_eq!(b.history.len(), a.history.len());
        // Continue both for two more rounds: plans, outputs and replicas must agree
        // byte for byte.
        let mut steps_b = Vec::new();
        for _ in 0..2 {
            a.plan_round(&present, &mut steps);
            b.plan_round(&present, &mut steps_b);
            for (sa, sb) in steps.iter().zip(steps_b.iter()) {
                assert_eq!(sa.indices, sb.indices);
                assert_eq!(sa.forward_index, sb.forward_index);
            }
            let ra = a.run_round(&steps);
            let rb = b.run_round(&steps_b);
            assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
            a.apply_round_own(&steps, 0.05);
            b.apply_round_own(&steps_b, 0.05);
        }
        for w in 0..cfg.workers {
            assert_eq!(a.workers[w].params, b.workers[w].params, "worker {w}");
        }
        let ea = a.evaluate_params(&a.workers[0].params.clone());
        let eb = b.evaluate_params(&b.workers[0].params.clone());
        assert_eq!(ea.loss.to_bits(), eb.loss.to_bits());
    }

    #[test]
    #[should_panic]
    fn round_worker_lists_must_be_strictly_increasing() {
        let cfg = small_cfg();
        let mut sim = Simulator::new(&cfg);
        let mut steps = Vec::new();
        sim.plan_round(&[1, 1], &mut steps);
    }

    #[test]
    fn non_iid_workers_draw_from_their_shards() {
        let mut cfg = small_cfg();
        cfg.workers = 10;
        cfg.non_iid_labels_per_worker = Some(1);
        let mut sim = Simulator::new(&cfg);
        let (idx, _) = sim.next_batch(3);
        let labels: Vec<usize> = idx.iter().map(|&i| sim.train.targets()[i]).collect();
        let mut unique = labels.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 1, "a 1-label shard must yield a single label");
    }
}

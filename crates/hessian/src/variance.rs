//! Gradient-variance tracking — the cheap first-order proxy for Hessian-based
//! critical-period detection (Fig. 4 of the paper).

/// Population variance of the gradient coordinates of a single step.
///
/// This is the quantity the paper's `RelativeGradChange` tracks per iteration (it is
/// computed "for free" from the gradient produced by backpropagation).
pub fn gradient_variance(grad: &[f32]) -> f32 {
    if grad.is_empty() {
        return 0.0;
    }
    let n = grad.len() as f32;
    let mean = grad.iter().sum::<f32>() / n;
    grad.iter().map(|g| (g - mean).powi(2)).sum::<f32>() / n
}

/// Squared L2 norm of the gradient (the alternative significance statistic of Eqn. 2).
pub fn gradient_sq_norm(grad: &[f32]) -> f32 {
    grad.iter().map(|g| g * g).sum()
}

/// Variance of per-worker gradients around their mean — the "gradient noise" between
/// workers that the paper cites as a statistical-efficiency signal (§III-A).
pub fn inter_worker_variance(worker_grads: &[Vec<f32>]) -> f32 {
    if worker_grads.is_empty() || worker_grads[0].is_empty() {
        return 0.0;
    }
    let dim = worker_grads[0].len();
    let n = worker_grads.len() as f32;
    let mut mean = vec![0.0f32; dim];
    for g in worker_grads {
        assert_eq!(g.len(), dim, "all worker gradients must have equal length");
        for (m, &x) in mean.iter_mut().zip(g.iter()) {
            *m += x;
        }
    }
    for m in mean.iter_mut() {
        *m /= n;
    }
    let mut total = 0.0f32;
    for g in worker_grads {
        for (m, &x) in mean.iter().zip(g.iter()) {
            total += (x - m).powi(2);
        }
    }
    total / (n * dim as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variance_of_constant_gradient_is_zero() {
        assert_eq!(gradient_variance(&[0.5; 100]), 0.0);
        assert_eq!(gradient_variance(&[]), 0.0);
    }

    #[test]
    fn variance_matches_closed_form() {
        let v = gradient_variance(&[1.0, 2.0, 3.0, 4.0]);
        assert!((v - 1.25).abs() < 1e-6);
    }

    #[test]
    fn sq_norm_matches_definition() {
        assert_eq!(gradient_sq_norm(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn identical_workers_have_zero_inter_worker_variance() {
        let grads = vec![vec![1.0, -1.0, 0.5]; 8];
        assert_eq!(inter_worker_variance(&grads), 0.0);
    }

    #[test]
    fn disagreement_increases_inter_worker_variance() {
        let agree = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let disagree = vec![vec![1.0, 1.0], vec![-1.0, -1.0]];
        assert!(inter_worker_variance(&disagree) > inter_worker_variance(&agree));
    }
}

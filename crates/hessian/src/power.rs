//! Power iteration for the largest Hessian eigenvalue.

use crate::hvp::{hessian_vector_product, GradientOracle};
use rand::Rng;
use selsync_tensor::rng;

/// Result of a power-iteration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EigenEstimate {
    /// Estimated top eigenvalue (Rayleigh quotient at the final iterate).
    pub eigenvalue: f32,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Relative change of the estimate over the last iteration.
    pub final_delta: f32,
}

/// Estimate the largest-magnitude eigenvalue of the Hessian at `params` with power
/// iteration on finite-difference Hessian-vector products.
pub fn top_eigenvalue(
    oracle: &mut dyn GradientOracle,
    params: &[f32],
    max_iters: usize,
    tol: f32,
    seed: u64,
) -> EigenEstimate {
    let dim = params.len();
    let mut r = rng::seeded(seed);
    let mut v: Vec<f32> = (0..dim).map(|_| r.gen_range(-1.0f32..1.0)).collect();
    normalize(&mut v);

    let mut eigen = 0.0f32;
    let mut delta = f32::INFINITY;
    let mut iters = 0;
    for i in 0..max_iters {
        iters = i + 1;
        let hv = hessian_vector_product(oracle, params, &v, 1e-2);
        // Rayleigh quotient with the current unit vector.
        let new_eigen: f32 = v.iter().zip(hv.iter()).map(|(a, b)| a * b).sum();
        delta = if eigen.abs() > 1e-12 {
            ((new_eigen - eigen) / eigen).abs()
        } else {
            f32::INFINITY
        };
        eigen = new_eigen;
        let norm: f32 = hv.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm < 1e-12 {
            // Hessian is (numerically) zero along every probed direction.
            eigen = 0.0;
            delta = 0.0;
            break;
        }
        v = hv;
        normalize(&mut v);
        if delta < tol && i > 0 {
            break;
        }
    }
    EigenEstimate {
        eigenvalue: eigen,
        iterations: iters,
        final_delta: delta,
    }
}

fn normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct QuadraticOracle {
        diag: Vec<f32>,
    }

    impl GradientOracle for QuadraticOracle {
        fn gradient_at(&mut self, params: &[f32]) -> Vec<f32> {
            self.diag
                .iter()
                .zip(params.iter())
                .map(|(d, p)| d * p)
                .collect()
        }
        fn dim(&self) -> usize {
            self.diag.len()
        }
    }

    #[test]
    fn recovers_dominant_diagonal_entry() {
        let mut oracle = QuadraticOracle {
            diag: vec![1.0, 5.0, 2.0, 0.5],
        };
        let params = vec![0.0; 4];
        let est = top_eigenvalue(&mut oracle, &params, 100, 1e-4, 7);
        assert!((est.eigenvalue - 5.0).abs() < 0.1, "{est:?}");
        assert!(est.iterations <= 100);
    }

    #[test]
    fn zero_hessian_reports_zero() {
        let mut oracle = QuadraticOracle { diag: vec![0.0; 3] };
        let est = top_eigenvalue(&mut oracle, &[1.0, 2.0, 3.0], 20, 1e-4, 1);
        assert_eq!(est.eigenvalue, 0.0);
    }

    #[test]
    fn works_on_a_real_model() {
        use crate::hvp::ModelBatchOracle;
        use selsync_nn::model::{ModelKind, PaperModel};
        use selsync_tensor::Tensor;
        let mut model = PaperModel::build(ModelKind::ResNetLike, 5);
        let x = Tensor::from_fn(8, model.input_dim(), |r, c| {
            (((r * 5 + c) % 7) as f32 - 3.0) * 0.3
        });
        let y: Vec<usize> = (0..8).map(|i| i % 10).collect();
        let params = model.params_flat();
        let mut oracle = ModelBatchOracle::new(&mut model, &x, &y);
        let est = top_eigenvalue(&mut oracle, &params, 8, 1e-2, 3);
        assert!(est.eigenvalue.is_finite());
        assert!(
            est.eigenvalue > 0.0,
            "cross-entropy Hessian should have a positive top eigenvalue"
        );
    }
}

//! Hessian-vector products by central finite differences of the gradient.
//!
//! For a loss `L(θ)` with gradient `g(θ)`, the Hessian-vector product is approximated as
//! `H v ≈ (g(θ + εv) - g(θ - εv)) / (2ε)` — two extra gradient evaluations per product,
//! no second-order autodiff required. This is exactly the "compute the Hessian is very
//! expensive" trade-off the paper discusses: even this approximation costs two full
//! forward/backward passes per iteration of power iteration.

use selsync_nn::model::PaperModel;
use selsync_tensor::Tensor;

/// A gradient oracle: returns the gradient of the loss at the supplied flat parameters.
pub trait GradientOracle {
    /// Gradient of the training loss evaluated at `params`.
    fn gradient_at(&mut self, params: &[f32]) -> Vec<f32>;

    /// Number of parameters.
    fn dim(&self) -> usize;
}

/// Gradient oracle for a [`PaperModel`] on a fixed batch (the paper computes the Hessian
/// eigenvalue on the current training batch each step).
pub struct ModelBatchOracle<'a> {
    model: &'a mut PaperModel,
    inputs: &'a Tensor,
    targets: &'a [usize],
}

impl<'a> ModelBatchOracle<'a> {
    /// Create an oracle over a fixed `(inputs, targets)` batch.
    pub fn new(model: &'a mut PaperModel, inputs: &'a Tensor, targets: &'a [usize]) -> Self {
        ModelBatchOracle {
            model,
            inputs,
            targets,
        }
    }
}

impl GradientOracle for ModelBatchOracle<'_> {
    fn gradient_at(&mut self, params: &[f32]) -> Vec<f32> {
        let saved = self.model.params_flat();
        self.model.set_params_flat(params);
        self.model.forward_backward(self.inputs, self.targets);
        let grad = self.model.grads_flat();
        self.model.set_params_flat(&saved);
        grad
    }

    fn dim(&self) -> usize {
        self.model.param_count()
    }
}

/// Central-finite-difference Hessian-vector product at `params` in direction `v`.
pub fn hessian_vector_product(
    oracle: &mut dyn GradientOracle,
    params: &[f32],
    v: &[f32],
    eps: f32,
) -> Vec<f32> {
    assert_eq!(params.len(), v.len(), "parameter/direction length mismatch");
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm == 0.0 {
        return vec![0.0; params.len()];
    }
    // Perturb along the *unit* direction for numerical stability, then rescale.
    let step = eps / norm;
    let plus: Vec<f32> = params
        .iter()
        .zip(v.iter())
        .map(|(p, d)| p + step * d)
        .collect();
    let minus: Vec<f32> = params
        .iter()
        .zip(v.iter())
        .map(|(p, d)| p - step * d)
        .collect();
    let g_plus = oracle.gradient_at(&plus);
    let g_minus = oracle.gradient_at(&minus);
    g_plus
        .iter()
        .zip(g_minus.iter())
        .map(|(gp, gm)| (gp - gm) / (2.0 * step))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic loss L(θ) = 0.5 θᵀ A θ with known Hessian A.
    struct QuadraticOracle {
        a: Vec<Vec<f32>>,
    }

    impl GradientOracle for QuadraticOracle {
        fn gradient_at(&mut self, params: &[f32]) -> Vec<f32> {
            self.a
                .iter()
                .map(|row| row.iter().zip(params.iter()).map(|(aij, x)| aij * x).sum())
                .collect()
        }

        fn dim(&self) -> usize {
            self.a.len()
        }
    }

    #[test]
    fn hvp_of_quadratic_matches_matrix_product() {
        let a = vec![
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 0.5],
            vec![0.0, 0.5, 1.0],
        ];
        let mut oracle = QuadraticOracle { a: a.clone() };
        let params = vec![0.3, -0.2, 0.7];
        let v = vec![1.0, 2.0, -1.0];
        let hv = hessian_vector_product(&mut oracle, &params, &v, 1e-3);
        let expected: Vec<f32> = a
            .iter()
            .map(|row| row.iter().zip(v.iter()).map(|(aij, x)| aij * x).sum())
            .collect();
        for (h, e) in hv.iter().zip(expected.iter()) {
            assert!((h - e).abs() < 1e-2, "{h} vs {e}");
        }
    }

    #[test]
    fn zero_direction_gives_zero_product() {
        let mut oracle = QuadraticOracle {
            a: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
        };
        let hv = hessian_vector_product(&mut oracle, &[1.0, 1.0], &[0.0, 0.0], 1e-3);
        assert_eq!(hv, vec![0.0, 0.0]);
    }

    #[test]
    fn model_oracle_restores_parameters() {
        use selsync_nn::model::{ModelKind, PaperModel};
        let mut model = PaperModel::build(ModelKind::ResNetLike, 3);
        let before = model.params_flat();
        let x = Tensor::from_fn(4, model.input_dim(), |r, c| ((r + c) % 3) as f32 * 0.5);
        let y = vec![0usize, 1, 2, 3];
        let mut oracle = ModelBatchOracle::new(&mut model, &x, &y);
        let probe: Vec<f32> = before.iter().map(|p| p + 0.01).collect();
        let _ = oracle.gradient_at(&probe);
        assert_eq!(model.params_flat(), before);
    }
}

//! # selsync-hessian
//!
//! Second-order diagnostics used in §II-E / Fig. 4 of the paper: the largest eigenvalue
//! of the loss Hessian tracks "critical learning periods", and the paper shows that the
//! (much cheaper) first-order gradient variance follows the same trajectory — which is
//! the approximation SelSync's `Δ(g_i)` metric builds on.
//!
//! * [`hvp`] — Hessian-vector products via central finite differences of the gradient,
//!   so no second-order autodiff is needed.
//! * [`power`] — power iteration on the Hessian-vector product to estimate the top
//!   eigenvalue.
//! * [`variance`] — per-step gradient variance (the first-order proxy).
//!
//! The figure binary `fig4_hessian_variance` runs both trackers along a BSP training
//! trajectory and prints the two series side by side.

pub mod hvp;
pub mod power;
pub mod variance;

pub use power::top_eigenvalue;
pub use variance::gradient_variance;

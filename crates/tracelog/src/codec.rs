//! The line codec: one event per line, a small hand-rolled JSON subset.
//!
//! The canonical form is deliberately rigid — fixed key order per kind, shortest
//! round-trippable float formatting (`format!("{x}")` on `f32`), no whitespace —
//! so that byte equality of two logs is exactly semantic equality of two runs.
//! Non-finite floats encode as the bare tokens `NaN` / `inf` / `-inf` (a documented
//! deviation from strict JSON; Rust's `f32` parser accepts them back).

use crate::event::{Event, FaultKind, PullKind, WindowEdge};

/// Encode one event as its canonical line (no trailing newline).
pub fn encode_event(event: &Event) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"k\":\"");
    s.push_str(event.kind());
    s.push('"');
    for (key, value) in encoded_fields(event) {
        s.push_str(",\"");
        s.push_str(key);
        s.push_str("\":");
        s.push_str(&value);
    }
    s.push('}');
    s
}

/// Per-kind payload in canonical key order, values already JSON-rendered.
fn encoded_fields(event: &Event) -> Vec<(&'static str, String)> {
    event
        .fields()
        .into_iter()
        .map(|(key, value)| {
            // `fields()` renders everything except strings in final JSON form; the
            // two string-valued header fields need quoting + escaping here.
            let rendered = match (event, key) {
                (Event::Header { .. }, "algorithm") | (Event::Header { .. }, "policy") => {
                    quote(&value)
                }
                (Event::FaultWindow { .. }, "fault")
                | (Event::FaultWindow { .. }, "edge")
                | (Event::RejoinPull { .. }, "pull") => quote(&value),
                _ => value,
            };
            (key, rendered)
        })
        .collect()
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// decoding
// ---------------------------------------------------------------------------

/// A parsed JSON-subset value. Numbers keep their raw token so `f32` fields parse
/// with exactly one rounding (no double round-trip through `f64`).
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<JsonValue>),
}

impl JsonValue {
    fn as_usize(&self, field: &str) -> Result<usize, String> {
        match self {
            JsonValue::Num(raw) => raw
                .parse::<usize>()
                .map_err(|_| format!("field `{field}`: `{raw}` is not an unsigned integer")),
            other => Err(format!("field `{field}`: expected integer, got {other:?}")),
        }
    }

    fn as_u64(&self, field: &str) -> Result<u64, String> {
        match self {
            JsonValue::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| format!("field `{field}`: `{raw}` is not a u64")),
            other => Err(format!("field `{field}`: expected integer, got {other:?}")),
        }
    }

    fn as_f32(&self, field: &str) -> Result<f32, String> {
        match self {
            JsonValue::Num(raw) => raw
                .parse::<f32>()
                .map_err(|_| format!("field `{field}`: `{raw}` is not a float")),
            other => Err(format!("field `{field}`: expected number, got {other:?}")),
        }
    }

    fn as_bool(&self, field: &str) -> Result<bool, String> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(format!("field `{field}`: expected bool, got {other:?}")),
        }
    }

    fn as_str(&self, field: &str) -> Result<&str, String> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(format!("field `{field}`: expected string, got {other:?}")),
        }
    }

    fn as_opt_usize(&self, field: &str) -> Result<Option<usize>, String> {
        match self {
            JsonValue::Null => Ok(None),
            other => other.as_usize(field).map(Some),
        }
    }

    fn as_usize_array(&self, field: &str) -> Result<Vec<usize>, String> {
        match self {
            JsonValue::Arr(items) => items.iter().map(|v| v.as_usize(field)).collect(),
            other => Err(format!("field `{field}`: expected array, got {other:?}")),
        }
    }

    fn as_bool_array(&self, field: &str) -> Result<Vec<bool>, String> {
        match self {
            JsonValue::Arr(items) => items.iter().map(|v| v.as_bool(field)).collect(),
            other => Err(format!("field `{field}`: expected array, got {other:?}")),
        }
    }
}

/// Decode one canonical line back into an event.
pub fn decode_event(line: &str) -> Result<Event, String> {
    let pairs = parse_object(line)?;
    let get = |field: &str| -> Result<&JsonValue, String> {
        pairs
            .iter()
            .find(|(k, _)| k == field)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{field}`"))
    };
    let kind = get("k")?.as_str("k")?.to_string();
    match kind.as_str() {
        "header" => Ok(Event::Header {
            version: get("version")?.as_u64("version")? as u32,
            algorithm: get("algorithm")?.as_str("algorithm")?.to_string(),
            policy: get("policy")?.as_str("policy")?.to_string(),
            workers: get("workers")?.as_usize("workers")?,
            iterations: get("iterations")?.as_usize("iterations")?,
            seed: get("seed")?.as_u64("seed")?,
        }),
        "membership" => Ok(Event::Membership {
            round: get("round")?.as_usize("round")?,
            active: get("active")?.as_usize_array("active")?,
            joined: get("joined")?.as_usize_array("joined")?,
            left: get("left")?.as_usize_array("left")?,
        }),
        "fault" => Ok(Event::FaultWindow {
            round: get("round")?.as_usize("round")?,
            kind: FaultKind::parse(get("fault")?.as_str("fault")?)?,
            edge: WindowEdge::parse(get("edge")?.as_str("edge")?)?,
            worker: get("worker")?.as_opt_usize("worker")?,
        }),
        "rejoin" => Ok(Event::RejoinPull {
            round: get("round")?.as_usize("round")?,
            worker: get("worker")?.as_usize("worker")?,
            pull: PullKind::parse(get("pull")?.as_str("pull")?)?,
            from: get("from")?.as_opt_usize("from")?,
        }),
        "signal" => Ok(Event::Signal {
            round: get("round")?.as_usize("round")?,
            mean_loss: get("mean_loss")?.as_f32("mean_loss")?,
            max_delta: get("max_delta")?.as_f32("max_delta")?,
        }),
        "round" => Ok(Event::Round {
            round: get("round")?.as_usize("round")?,
            delta: get("delta")?.as_f32("delta")?,
            flags: get("flags")?.as_bool_array("flags")?,
            synced: get("synced")?.as_bool("synced")?,
        }),
        "switch" => Ok(Event::RegimeSwitch {
            round: get("round")?.as_usize("round")?,
            exploit: get("exploit")?.as_bool("exploit")?,
            loss_ewma: get("loss_ewma")?.as_f32("loss_ewma")?,
            delta_ewma: get("delta_ewma")?.as_f32("delta_ewma")?,
            mean_loss: get("mean_loss")?.as_f32("mean_loss")?,
            max_delta: get("max_delta")?.as_f32("max_delta")?,
        }),
        "comm_retry" => Ok(Event::CommRetry {
            round: get("round")?.as_usize("round")?,
            worker: get("worker")?.as_usize("worker")?,
            attempts: get("attempts")?.as_u64("attempts")? as u32,
        }),
        "comm_evict" => Ok(Event::CommEvict {
            round: get("round")?.as_usize("round")?,
            worker: get("worker")?.as_usize("worker")?,
        }),
        "ps_down" => Ok(Event::PsDown {
            round: get("round")?.as_usize("round")?,
        }),
        "ps_up" => Ok(Event::PsUp {
            round: get("round")?.as_usize("round")?,
        }),
        "degraded_round" => Ok(Event::DegradedRound {
            round: get("round")?.as_usize("round")?,
            delta: get("delta")?.as_f32("delta")?,
            loss: get("loss")?.as_f32("loss")?,
            delta_g: get("delta_g")?.as_f32("delta_g")?,
        }),
        "catchup_sync" => Ok(Event::CatchupSync {
            round: get("round")?.as_usize("round")?,
            behind: get("behind")?.as_usize("behind")?,
        }),
        other => Err(format!("unknown event kind `{other}`")),
    }
}

/// Parse a single-line JSON object into ordered key/value pairs.
fn parse_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut pairs = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            pairs.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after object at offset {}", p.pos));
    }
    Ok(pairs)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected `{}`, got {other:?}", want as char)),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => break,
                        other => return Err(format!("expected `,` or `]`, got {other:?}")),
                    }
                }
                Ok(JsonValue::Arr(items))
            }
            Some(_) => {
                // Bare token: number (possibly NaN/inf/-inf), bool, or null.
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if matches!(b, b',' | b'}' | b']' | b' ' | b'\t') {
                        break;
                    }
                    self.pos += 1;
                }
                let token = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 token".to_string())?;
                match token {
                    "" => Err("empty value".to_string()),
                    "true" => Ok(JsonValue::Bool(true)),
                    "false" => Ok(JsonValue::Bool(false)),
                    "null" => Ok(JsonValue::Null),
                    _ => Ok(JsonValue::Num(token.to_string())),
                }
            }
            None => Err("unexpected end of line".to_string()),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code).ok_or_else(|| "bad \\u codepoint".to_string())?,
                        );
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the remaining continuation bytes raw.
                    let len = if b >= 0xF0 {
                        4
                    } else if b >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err("truncated utf-8 sequence".to_string());
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| "invalid utf-8 in string".to_string())?,
                    );
                    self.pos = end;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventLog, TRACE_VERSION};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Header {
                version: TRACE_VERSION,
                algorithm: "SelSync(d=0.055,PA)".into(),
                policy: "adaptive(0->0.5,warmup=8,settle=0.05x4,spike=2.5)".into(),
                workers: 6,
                iterations: 30,
                seed: 42,
            },
            Event::Membership {
                round: 0,
                active: vec![0, 1, 2, 3, 4, 5],
                joined: vec![0, 1, 2, 3, 4, 5],
                left: vec![],
            },
            Event::FaultWindow {
                round: 3,
                kind: FaultKind::Bandwidth,
                edge: WindowEdge::Open,
                worker: None,
            },
            Event::FaultWindow {
                round: 7,
                kind: FaultKind::Slowdown,
                edge: WindowEdge::Close,
                worker: Some(2),
            },
            Event::RejoinPull {
                round: 12,
                worker: 4,
                pull: PullKind::Scheduled,
                from: Some(9),
            },
            Event::RejoinPull {
                round: 12,
                worker: 5,
                pull: PullKind::WallClock,
                from: None,
            },
            Event::Signal {
                round: 4,
                mean_loss: 1.25,
                max_delta: 0.062_5,
            },
            Event::Round {
                round: 4,
                delta: 0.055,
                flags: vec![true, false, true],
                synced: true,
            },
            Event::RegimeSwitch {
                round: 14,
                exploit: true,
                loss_ewma: 0.731,
                delta_ewma: 0.041,
                mean_loss: 0.729,
                max_delta: 0.038,
            },
            Event::CommRetry {
                round: 9,
                worker: 2,
                attempts: 3,
            },
            Event::CommEvict {
                round: 11,
                worker: 2,
            },
            Event::PsDown { round: 16 },
            Event::PsUp { round: 19 },
            Event::DegradedRound {
                round: 17,
                delta: 0.055,
                loss: 0.912,
                delta_g: 0.033,
            },
            Event::CatchupSync {
                round: 19,
                behind: 3,
            },
        ]
    }

    #[test]
    fn every_event_kind_round_trips_exactly() {
        for event in sample_events() {
            let line = encode_event(&event);
            let back = decode_event(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert_eq!(event, back, "{line}");
            // Encoding is a fixed point.
            assert_eq!(line, encode_event(&back));
        }
    }

    #[test]
    fn log_encode_decode_round_trips_with_trailing_newline() {
        let log = EventLog {
            events: sample_events(),
        };
        let text = log.encode();
        assert!(text.ends_with('\n'));
        let back = EventLog::decode(&text).unwrap();
        assert_eq!(log, back);
        assert_eq!(text, back.encode());
    }

    #[test]
    fn floats_use_shortest_form_and_reparse_bit_exactly() {
        // 0.1 has no exact binary form; the awkward mantissa stresses shortest-repr.
        let (a, b) = (0.1f32, 1.234_567_8e-3f32);
        let event = Event::Signal {
            round: 0,
            mean_loss: a,
            max_delta: b,
        };
        let line = encode_event(&event);
        assert!(line.contains("\"mean_loss\":0.1"), "{line}");
        match decode_event(&line).unwrap() {
            Event::Signal {
                mean_loss,
                max_delta,
                ..
            } => {
                assert_eq!(mean_loss.to_bits(), a.to_bits());
                assert_eq!(max_delta.to_bits(), b.to_bits());
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_error_instead_of_guessing() {
        assert!(decode_event("").is_err());
        assert!(decode_event("{}").is_err()); // no kind
        assert!(decode_event("{\"k\":\"nope\"}").is_err());
        assert!(decode_event("{\"k\":\"round\",\"round\":1}").is_err()); // missing fields
        assert!(decode_event(
            "{\"k\":\"round\",\"round\":1,\"delta\":0.1,\"flags\":[true],\"synced\":true} x"
        )
        .is_err());
        assert!(EventLog::decode("{\"k\":\"header\"\n\n").is_err());
    }

    #[test]
    fn non_finite_floats_survive_the_codec() {
        let event = Event::Signal {
            round: 1,
            mean_loss: f32::NAN,
            max_delta: f32::INFINITY,
        };
        let line = encode_event(&event);
        assert!(line.contains("NaN") && line.contains("inf"), "{line}");
        match decode_event(&line).unwrap() {
            Event::Signal {
                mean_loss,
                max_delta,
                ..
            } => {
                assert!(mean_loss.is_nan());
                assert_eq!(max_delta, f32::INFINITY);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }
}

//! First-divergence diff over two event logs, with a field-level explanation.
//!
//! Because the canonical form is totally ordered, a plain positional walk finds the
//! earliest semantic difference: the first line where the logs disagree is the first
//! *round* where the two runs made a different decision.

use crate::codec::encode_event;
use crate::event::{Event, EventLog};

/// One differing field between two same-kind events.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDiff {
    pub field: &'static str,
    pub left: String,
    pub right: String,
}

/// The first point where two logs disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// 0-based line index into the canonical logs.
    pub index: usize,
    /// The round the divergence belongs to (`None` when the header differs).
    pub round: Option<usize>,
    /// The left log's event at `index` (`None` when the left log ended early).
    pub left: Option<Event>,
    /// The right log's event at `index` (`None` when the right log ended early).
    pub right: Option<Event>,
    /// Field-level differences — populated when both events exist and share a kind.
    pub fields: Vec<FieldDiff>,
}

/// Find the first divergence between two logs (`None` when they are identical).
pub fn first_divergence(a: &EventLog, b: &EventLog) -> Option<Divergence> {
    let n = a.events.len().max(b.events.len());
    for index in 0..n {
        let left = a.events.get(index);
        let right = b.events.get(index);
        match (left, right) {
            (Some(l), Some(r)) if l == r => continue,
            _ => {
                let round = left
                    .and_then(|e| e.round())
                    .or_else(|| right.and_then(|e| e.round()));
                let fields = match (left, right) {
                    (Some(l), Some(r)) if l.kind() == r.kind() => l
                        .fields()
                        .into_iter()
                        .zip(r.fields())
                        .filter(|((_, lv), (_, rv))| lv != rv)
                        .map(|((name, lv), (_, rv))| FieldDiff {
                            field: name,
                            left: lv,
                            right: rv,
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                return Some(Divergence {
                    index,
                    round,
                    left: left.cloned(),
                    right: right.cloned(),
                    fields,
                });
            }
        }
    }
    None
}

/// Render a divergence as a human-readable, deterministic explanation.
pub fn explain(d: &Divergence, left_label: &str, right_label: &str) -> String {
    let mut out = String::new();
    match d.round {
        Some(round) => out.push_str(&format!(
            "first divergence at round {round} (line {}): {left_label} vs {right_label}\n",
            d.index + 1
        )),
        None => out.push_str(&format!(
            "first divergence in the header (line {}): {left_label} vs {right_label}\n",
            d.index + 1
        )),
    }
    match (&d.left, &d.right) {
        (Some(l), Some(r)) if l.kind() == r.kind() => {
            out.push_str(&format!("  event kind: {}\n", l.kind()));
            for f in &d.fields {
                out.push_str(&format!(
                    "  field `{}`: {} vs {}\n",
                    f.field, f.left, f.right
                ));
            }
        }
        (Some(l), Some(r)) => {
            out.push_str(&format!(
                "  event kinds differ: {} vs {}\n",
                l.kind(),
                r.kind()
            ));
        }
        (Some(l), None) => {
            out.push_str(&format!(
                "  {right_label} log ends early ({left_label} continues with a {} event)\n",
                l.kind()
            ));
        }
        (None, Some(r)) => {
            out.push_str(&format!(
                "  {left_label} log ends early ({right_label} continues with a {} event)\n",
                r.kind()
            ));
        }
        (None, None) => {}
    }
    if let Some(l) = &d.left {
        out.push_str(&format!("  {left_label:<9}: {}\n", encode_event(l)));
    }
    if let Some(r) = &d.right {
        out.push_str(&format!("  {right_label:<9}: {}\n", encode_event(r)));
    }
    out
}

/// Convenience: diff two logs and render the explanation in one step.
pub fn diff_report(
    a: &EventLog,
    b: &EventLog,
    left_label: &str,
    right_label: &str,
) -> Option<String> {
    first_divergence(a, b).map(|d| explain(&d, left_label, right_label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TRACE_VERSION;

    fn base_log() -> EventLog {
        EventLog {
            events: vec![
                Event::Header {
                    version: TRACE_VERSION,
                    algorithm: "SelSync(d=0.1,PA)".into(),
                    policy: "d=0.1".into(),
                    workers: 2,
                    iterations: 3,
                    seed: 42,
                },
                Event::Round {
                    round: 0,
                    delta: 0.1,
                    flags: vec![true, true],
                    synced: true,
                },
                Event::Round {
                    round: 1,
                    delta: 0.1,
                    flags: vec![false, false],
                    synced: false,
                },
                Event::Round {
                    round: 2,
                    delta: 0.1,
                    flags: vec![false, true],
                    synced: true,
                },
            ],
        }
    }

    #[test]
    fn identical_logs_have_no_divergence() {
        let log = base_log();
        assert_eq!(first_divergence(&log, &log), None);
        assert_eq!(diff_report(&log, &log, "a", "b"), None);
    }

    #[test]
    fn field_level_divergence_pins_the_round_and_the_field() {
        let a = base_log();
        let mut b = base_log();
        b.events[2] = Event::Round {
            round: 1,
            delta: 0.1,
            flags: vec![false, true],
            synced: true,
        };
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.index, 2);
        assert_eq!(d.round, Some(1));
        let fields: Vec<&str> = d.fields.iter().map(|f| f.field).collect();
        assert_eq!(fields, vec!["flags", "synced"]);
        let text = explain(&d, "sim", "threaded");
        assert!(text.contains("first divergence at round 1"), "{text}");
        assert!(text.contains("field `synced`: false vs true"), "{text}");
        assert!(text.contains("sim"), "{text}");
    }

    #[test]
    fn truncated_log_reports_the_early_end() {
        let a = base_log();
        let mut b = base_log();
        b.events.truncate(2);
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.index, 2);
        assert!(d.right.is_none());
        let text = explain(&d, "left", "right");
        assert!(text.contains("right log ends early"), "{text}");
    }

    #[test]
    fn header_divergence_is_reported_as_header_not_round() {
        let a = base_log();
        let mut b = base_log();
        b.events[0] = Event::Header {
            version: TRACE_VERSION,
            algorithm: "SelSync(d=0.1,PA)".into(),
            policy: "d=0.1".into(),
            workers: 2,
            iterations: 3,
            seed: 43,
        };
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.round, None);
        assert_eq!(d.fields.len(), 1);
        assert_eq!(d.fields[0].field, "seed");
        assert!(explain(&d, "a", "b").contains("in the header"));
    }
}

//! The typed event stream: one versioned header plus per-round schedule-level facts.

/// Version of the canonical encoding. Bump on any wire-visible change so recorded
/// logs from older binaries fail loudly instead of diffing confusingly.
pub const TRACE_VERSION: u32 = 1;

/// How much of the stream a sink keeps.
///
/// * `Full` keeps every event.
/// * `Rounds` keeps only the structural skeleton — header, membership changes and
///   per-round decisions — dropping fault edges, rejoin pulls, signal values and
///   regime switches. Useful when only the sync schedule matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceGranularity {
    #[default]
    Full,
    Rounds,
}

impl TraceGranularity {
    /// Canonical lowercase name (the scenario-TOML value).
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceGranularity::Full => "full",
            TraceGranularity::Rounds => "rounds",
        }
    }

    /// Parse a canonical name back.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "full" => Ok(TraceGranularity::Full),
            "rounds" => Ok(TraceGranularity::Rounds),
            other => Err(format!(
                "unknown trace granularity `{other}` (expected `full` or `rounds`)"
            )),
        }
    }
}

/// Which fault family a window edge belongs to (crashes are covered by membership
/// events, not window edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    Slowdown,
    Bandwidth,
    Latency,
}

impl FaultKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Slowdown => "slowdown",
            FaultKind::Bandwidth => "bandwidth",
            FaultKind::Latency => "latency",
        }
    }

    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "slowdown" => Ok(FaultKind::Slowdown),
            "bandwidth" => Ok(FaultKind::Bandwidth),
            "latency" => Ok(FaultKind::Latency),
            other => Err(format!("unknown fault kind `{other}`")),
        }
    }
}

/// Whether a fault window opened or closed at this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowEdge {
    Open,
    Close,
}

impl WindowEdge {
    pub fn as_str(&self) -> &'static str {
        match self {
            WindowEdge::Open => "open",
            WindowEdge::Close => "close",
        }
    }

    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "open" => Ok(WindowEdge::Open),
            "close" => Ok(WindowEdge::Close),
            other => Err(format!("unknown window edge `{other}`")),
        }
    }
}

/// Which rejoin-pull semantics produced a global-model pull.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PullKind {
    WallClock,
    Scheduled,
}

impl PullKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            PullKind::WallClock => "wall-clock",
            PullKind::Scheduled => "scheduled",
        }
    }

    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "wall-clock" => Ok(PullKind::WallClock),
            "scheduled" => Ok(PullKind::Scheduled),
            other => Err(format!("unknown pull kind `{other}`")),
        }
    }
}

/// One line of the canonical log. All fields are schedule-level facts both backends
/// can compute identically; nothing here depends on wall clocks or thread timing.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// First line of every log: run identity.
    Header {
        version: u32,
        algorithm: String,
        policy: String,
        workers: usize,
        iterations: usize,
        seed: u64,
    },
    /// Active-set change at `round`: who is computing this round, who joined since
    /// the previous active round, who left. Emitted for the first active round and
    /// whenever the set changes (covers crashes, rejoins and elastic churn).
    Membership {
        round: usize,
        active: Vec<usize>,
        joined: Vec<usize>,
        left: Vec<usize>,
    },
    /// A non-crash fault window opened or closed between the previous active round
    /// and this one. `worker` is set for per-worker faults (slowdowns).
    FaultWindow {
        round: usize,
        kind: FaultKind,
        edge: WindowEdge,
        worker: Option<usize>,
    },
    /// A rejoining worker pulled a global model. `from` is the sync round whose
    /// global it received (`None` for the initial model, or for wall-clock pulls
    /// whose source is inherently timing-dependent).
    RejoinPull {
        round: usize,
        worker: usize,
        pull: PullKind,
        from: Option<usize>,
    },
    /// Cluster-aggregated round signal (only emitted for signal-consuming policies,
    /// which are the only arms that exchange these values in the cluster driver).
    Signal {
        round: usize,
        mean_loss: f32,
        max_delta: f32,
    },
    /// The round's synchronization decision: the δ the policy chose, each present
    /// worker's sync wish (in active-set order), and whether the cluster synced.
    Round {
        round: usize,
        delta: f32,
        flags: Vec<bool>,
        synced: bool,
    },
    /// The adaptive policy switched regimes after observing this round's signal.
    /// `exploit` is the regime switched *to*; the EWMA fields are the detector
    /// state that triggered the switch.
    RegimeSwitch {
        round: usize,
        exploit: bool,
        loss_ewma: f32,
        delta_ewma: f32,
        mean_loss: f32,
        max_delta: f32,
    },
    /// A worker's comm exchanges at this round needed more than one attempt under
    /// the seeded `[comm_faults]` schedule. `attempts` is the per-op attempt count
    /// (all of a worker's ops in one round share the same link weather, hence the
    /// same count).
    CommRetry {
        round: usize,
        worker: usize,
        attempts: u32,
    },
    /// A worker exhausted its retry budget at this round and was evicted from the
    /// cluster membership — the comm-fault analogue of a scheduled crash with no
    /// rejoin.
    CommEvict { round: usize, worker: usize },
    /// The parameter server became unreachable at this round (the first round of a
    /// `[ps_faults]` outage window or brownout).
    PsDown { round: usize },
    /// The parameter server came back at this round (the first reachable round
    /// after an outage) — this round runs the catch-up sync.
    PsUp { round: usize },
    /// A degraded, forced-local round while the PS was down: no sync decision was
    /// possible, every present worker trained locally. Replaces the `Round` event
    /// for that round; `delta` is the δ the policy would have used, `loss`/`delta_g`
    /// are the local signal fed to the policy so regime state stays coherent.
    DegradedRound {
        round: usize,
        delta: f32,
        loss: f32,
        delta_g: f32,
    },
    /// The first sync after a PS outage: synchronization is forced for every present
    /// worker, reconciling the `behind` accumulated local-only rounds through the
    /// elastic aggregation machinery.
    CatchupSync { round: usize, behind: usize },
}

impl Event {
    /// The round this event belongs to (`None` for the header).
    pub fn round(&self) -> Option<usize> {
        match self {
            Event::Header { .. } => None,
            Event::Membership { round, .. }
            | Event::FaultWindow { round, .. }
            | Event::RejoinPull { round, .. }
            | Event::Signal { round, .. }
            | Event::Round { round, .. }
            | Event::RegimeSwitch { round, .. }
            | Event::CommRetry { round, .. }
            | Event::CommEvict { round, .. }
            | Event::PsDown { round }
            | Event::PsUp { round }
            | Event::DegradedRound { round, .. }
            | Event::CatchupSync { round, .. } => Some(*round),
        }
    }

    /// Canonical kind tag (the `"k"` field of the encoded line).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Header { .. } => "header",
            Event::Membership { .. } => "membership",
            Event::FaultWindow { .. } => "fault",
            Event::RejoinPull { .. } => "rejoin",
            Event::Signal { .. } => "signal",
            Event::Round { .. } => "round",
            Event::RegimeSwitch { .. } => "switch",
            Event::CommRetry { .. } => "comm_retry",
            Event::CommEvict { .. } => "comm_evict",
            Event::PsDown { .. } => "ps_down",
            Event::PsUp { .. } => "ps_up",
            Event::DegradedRound { .. } => "degraded_round",
            Event::CatchupSync { .. } => "catchup_sync",
        }
    }

    /// Fixed within-round ordering of kinds in the canonical form.
    fn kind_rank(&self) -> u8 {
        match self {
            Event::Header { .. } => 0,
            Event::Membership { .. } => 1,
            Event::FaultWindow { .. } => 2,
            Event::RejoinPull { .. } => 3,
            Event::Signal { .. } => 4,
            Event::Round { .. } => 5,
            Event::RegimeSwitch { .. } => 6,
            Event::CommRetry { .. } => 7,
            Event::CommEvict { .. } => 8,
            Event::PsDown { .. } => 9,
            Event::PsUp { .. } => 10,
            Event::DegradedRound { .. } => 11,
            Event::CatchupSync { .. } => 12,
        }
    }

    /// Total order of the canonical form: header first, then rounds ascending, then
    /// kind, then worker (so concurrent per-worker events sort deterministically).
    /// Events that tie on this key are emitted by a single logical thread in a fixed
    /// order, so a *stable* sort keeps the canonical form unique.
    pub fn sort_key(&self) -> (usize, u8, usize) {
        let round_key = self.round().map_or(0, |r| r + 1);
        let worker_key = match self {
            Event::FaultWindow { worker, .. } => worker.map_or(0, |w| w + 1),
            Event::RejoinPull { worker, .. }
            | Event::CommRetry { worker, .. }
            | Event::CommEvict { worker, .. } => *worker + 1,
            _ => 0,
        };
        (round_key, self.kind_rank(), worker_key)
    }

    /// The event's payload as ordered `(field, rendered value)` pairs — the
    /// substrate of the field-level diff explanation. Renders with the same
    /// formatting as the codec so diff output matches the bytes on disk.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        fn f32s(x: f32) -> String {
            format!("{x}")
        }
        fn list(xs: &[usize]) -> String {
            let inner: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
            format!("[{}]", inner.join(","))
        }
        fn opt(x: Option<usize>) -> String {
            x.map_or_else(|| "null".to_string(), |v| v.to_string())
        }
        match self {
            Event::Header {
                version,
                algorithm,
                policy,
                workers,
                iterations,
                seed,
            } => vec![
                ("version", version.to_string()),
                ("algorithm", algorithm.clone()),
                ("policy", policy.clone()),
                ("workers", workers.to_string()),
                ("iterations", iterations.to_string()),
                ("seed", seed.to_string()),
            ],
            Event::Membership {
                round,
                active,
                joined,
                left,
            } => vec![
                ("round", round.to_string()),
                ("active", list(active)),
                ("joined", list(joined)),
                ("left", list(left)),
            ],
            Event::FaultWindow {
                round,
                kind,
                edge,
                worker,
            } => vec![
                ("round", round.to_string()),
                ("fault", kind.as_str().to_string()),
                ("edge", edge.as_str().to_string()),
                ("worker", opt(*worker)),
            ],
            Event::RejoinPull {
                round,
                worker,
                pull,
                from,
            } => vec![
                ("round", round.to_string()),
                ("worker", worker.to_string()),
                ("pull", pull.as_str().to_string()),
                ("from", opt(*from)),
            ],
            Event::Signal {
                round,
                mean_loss,
                max_delta,
            } => vec![
                ("round", round.to_string()),
                ("mean_loss", f32s(*mean_loss)),
                ("max_delta", f32s(*max_delta)),
            ],
            Event::Round {
                round,
                delta,
                flags,
                synced,
            } => vec![
                ("round", round.to_string()),
                ("delta", f32s(*delta)),
                (
                    "flags",
                    format!(
                        "[{}]",
                        flags
                            .iter()
                            .map(|f| f.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    ),
                ),
                ("synced", synced.to_string()),
            ],
            Event::RegimeSwitch {
                round,
                exploit,
                loss_ewma,
                delta_ewma,
                mean_loss,
                max_delta,
            } => vec![
                ("round", round.to_string()),
                ("exploit", exploit.to_string()),
                ("loss_ewma", f32s(*loss_ewma)),
                ("delta_ewma", f32s(*delta_ewma)),
                ("mean_loss", f32s(*mean_loss)),
                ("max_delta", f32s(*max_delta)),
            ],
            Event::CommRetry {
                round,
                worker,
                attempts,
            } => vec![
                ("round", round.to_string()),
                ("worker", worker.to_string()),
                ("attempts", attempts.to_string()),
            ],
            Event::CommEvict { round, worker } => {
                vec![("round", round.to_string()), ("worker", worker.to_string())]
            }
            Event::PsDown { round } | Event::PsUp { round } => {
                vec![("round", round.to_string())]
            }
            Event::DegradedRound {
                round,
                delta,
                loss,
                delta_g,
            } => vec![
                ("round", round.to_string()),
                ("delta", f32s(*delta)),
                ("loss", f32s(*loss)),
                ("delta_g", f32s(*delta_g)),
            ],
            Event::CatchupSync { round, behind } => {
                vec![("round", round.to_string()), ("behind", behind.to_string())]
            }
        }
    }
}

/// A full event log: the header plus the round events, in canonical order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventLog {
    pub events: Vec<Event>,
}

impl EventLog {
    /// Stable-sort into the canonical order (see [`Event::sort_key`]).
    pub fn canonical_sort(&mut self) {
        self.events.sort_by_key(Event::sort_key);
    }

    /// Encode to the canonical line-oriented JSON form (one event per line,
    /// trailing newline, no timestamps).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&crate::codec::encode_event(event));
            out.push('\n');
        }
        out
    }

    /// Decode a canonical log. Blank lines are rejected: a truncated or hand-edited
    /// log should fail loudly, not silently shrink.
    pub fn decode(text: &str) -> Result<EventLog, String> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let event =
                crate::codec::decode_event(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            events.push(event);
        }
        Ok(EventLog { events })
    }

    /// The header event, if present.
    pub fn header(&self) -> Option<&Event> {
        self.events
            .first()
            .filter(|e| matches!(e, Event::Header { .. }))
    }

    /// Merge per-process trace shards into one canonical log.
    ///
    /// The multi-process backend records each event in exactly one process (the
    /// hub owns the header and the policy's regime switches, the lowest-ranked
    /// present worker owns a round's structural events, each worker owns its own
    /// retry/eviction/rejoin events), so concatenating the shards and applying
    /// the canonical `(round, kind, worker)` sort reproduces the byte-identical
    /// log a single-process run of the same schedule emits.
    pub fn merge(shards: impl IntoIterator<Item = EventLog>) -> EventLog {
        let mut merged = EventLog {
            events: shards.into_iter().flat_map(|s| s.events).collect(),
        };
        merged.canonical_sort();
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_key_orders_header_first_then_round_kind_worker() {
        let mut log = EventLog {
            events: vec![
                Event::Round {
                    round: 1,
                    delta: 0.1,
                    flags: vec![true],
                    synced: true,
                },
                Event::RejoinPull {
                    round: 1,
                    worker: 3,
                    pull: PullKind::Scheduled,
                    from: Some(0),
                },
                Event::RejoinPull {
                    round: 1,
                    worker: 1,
                    pull: PullKind::Scheduled,
                    from: Some(0),
                },
                Event::Membership {
                    round: 0,
                    active: vec![0, 1],
                    joined: vec![0, 1],
                    left: vec![],
                },
                Event::Header {
                    version: TRACE_VERSION,
                    algorithm: "SelSync(d=0.1,PA)".into(),
                    policy: "d=0.1".into(),
                    workers: 4,
                    iterations: 2,
                    seed: 42,
                },
            ],
        };
        log.canonical_sort();
        let kinds: Vec<&str> = log.events.iter().map(Event::kind).collect();
        assert_eq!(
            kinds,
            vec!["header", "membership", "rejoin", "rejoin", "round"]
        );
        // Worker order breaks the rejoin tie.
        assert!(matches!(log.events[2], Event::RejoinPull { worker: 1, .. }));
        assert!(matches!(log.events[3], Event::RejoinPull { worker: 3, .. }));
    }

    #[test]
    fn granularity_and_tag_enums_round_trip_their_names() {
        for g in [TraceGranularity::Full, TraceGranularity::Rounds] {
            assert_eq!(TraceGranularity::parse(g.as_str()), Ok(g));
        }
        for k in [
            FaultKind::Slowdown,
            FaultKind::Bandwidth,
            FaultKind::Latency,
        ] {
            assert_eq!(FaultKind::parse(k.as_str()), Ok(k));
        }
        for e in [WindowEdge::Open, WindowEdge::Close] {
            assert_eq!(WindowEdge::parse(e.as_str()), Ok(e));
        }
        for p in [PullKind::WallClock, PullKind::Scheduled] {
            assert_eq!(PullKind::parse(p.as_str()), Ok(p));
        }
        assert!(TraceGranularity::parse("verbose").is_err());
    }
}

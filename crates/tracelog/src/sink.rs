//! The capture hook the training drivers write into.
//!
//! A [`TraceSink`] is a cheap-clone handle: disabled by default (a `None` check per
//! `record`, no allocation, no locking), or capturing into a shared buffer. Clones
//! share the buffer, which is how one sink threads through a `TrainConfig` into a
//! driver and its simulator — but it also means two *runs* must never share one
//! sink: give each run a fresh `TraceSink::capture(..)` and `take_log()` after.

use std::sync::{Arc, Mutex};

use crate::event::{Event, EventLog, TraceGranularity};

/// A shared, thread-safe event buffer — or nothing at all.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

#[derive(Debug)]
struct SinkInner {
    granularity: TraceGranularity,
    events: Mutex<Vec<Event>>,
}

impl TraceSink {
    /// The no-op sink (what `TrainConfig` carries by default).
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// A capturing sink. Events flow into a shared buffer until [`take_log`].
    ///
    /// [`take_log`]: TraceSink::take_log
    pub fn capture(granularity: TraceGranularity) -> Self {
        TraceSink {
            inner: Some(Arc::new(SinkInner {
                granularity,
                events: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether events are being captured. Drivers gate event *construction* on this
    /// so a disabled sink costs one branch per call site.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event (no-op when disabled; filtered by granularity).
    pub fn record(&self, event: Event) {
        let Some(inner) = &self.inner else { return };
        if inner.granularity == TraceGranularity::Rounds
            && !matches!(
                event,
                Event::Header { .. }
                    | Event::Membership { .. }
                    | Event::Round { .. }
                    | Event::DegradedRound { .. }
            )
        {
            return;
        }
        inner
            .events
            .lock()
            .expect("trace sink poisoned")
            .push(event);
    }

    /// Drain the buffer into a canonically ordered log. Returns an empty log for a
    /// disabled sink. The buffered events are stable-sorted by `(round, kind,
    /// worker)`, which erases thread interleaving from the cluster driver.
    pub fn take_log(&self) -> EventLog {
        let mut log = EventLog {
            events: match &self.inner {
                Some(inner) => {
                    std::mem::take(&mut *inner.events.lock().expect("trace sink poisoned"))
                }
                None => Vec::new(),
            },
        };
        log.canonical_sort();
        log
    }

    /// A canonically ordered copy of everything recorded so far, *without*
    /// draining the buffer — the checkpoint writers use this to persist the trace
    /// prefix mid-run while recording continues.
    pub fn snapshot_log(&self) -> EventLog {
        let mut log = EventLog {
            events: match &self.inner {
                Some(inner) => inner.events.lock().expect("trace sink poisoned").clone(),
                None => Vec::new(),
            },
        };
        log.canonical_sort();
        log
    }

    /// Seed the buffer with previously recorded events (a resumed run's trace
    /// prefix). No-op when disabled. The prefix must already be canonically sorted
    /// (checkpoints store it that way); the final stable `take_log` sort then keeps
    /// it byte-identical to an uninterrupted run's log.
    pub fn preload(&self, events: Vec<Event>) {
        let Some(inner) = &self.inner else { return };
        let mut buf = inner.events.lock().expect("trace sink poisoned");
        assert!(
            buf.is_empty(),
            "preload must run before any event is recorded"
        );
        *buf = events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{PullKind, TRACE_VERSION};

    #[test]
    fn disabled_sink_records_nothing_and_costs_nothing() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        sink.record(Event::Round {
            round: 0,
            delta: 0.1,
            flags: vec![true],
            synced: true,
        });
        assert!(sink.take_log().events.is_empty());
    }

    #[test]
    fn clones_share_one_buffer_and_take_log_sorts_canonically() {
        let sink = TraceSink::capture(TraceGranularity::Full);
        let clone = sink.clone();
        clone.record(Event::Round {
            round: 1,
            delta: 0.1,
            flags: vec![true],
            synced: true,
        });
        sink.record(Event::Header {
            version: TRACE_VERSION,
            algorithm: "a".into(),
            policy: "p".into(),
            workers: 1,
            iterations: 2,
            seed: 7,
        });
        let log = sink.take_log();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].kind(), "header");
        // The buffer was drained.
        assert!(clone.take_log().events.is_empty());
    }

    #[test]
    fn rounds_granularity_keeps_only_the_structural_skeleton() {
        let sink = TraceSink::capture(TraceGranularity::Rounds);
        sink.record(Event::Membership {
            round: 0,
            active: vec![0],
            joined: vec![0],
            left: vec![],
        });
        sink.record(Event::RejoinPull {
            round: 3,
            worker: 0,
            pull: PullKind::Scheduled,
            from: None,
        });
        sink.record(Event::Signal {
            round: 3,
            mean_loss: 1.0,
            max_delta: 0.5,
        });
        sink.record(Event::Round {
            round: 3,
            delta: 0.1,
            flags: vec![false],
            synced: false,
        });
        let kinds: Vec<&str> = sink.take_log().events.iter().map(Event::kind).collect();
        assert_eq!(kinds, vec!["membership", "round"]);
    }

    #[test]
    fn rounds_granularity_keeps_degraded_rounds() {
        let sink = TraceSink::capture(TraceGranularity::Rounds);
        sink.record(Event::DegradedRound {
            round: 2,
            delta: 0.1,
            loss: 1.0,
            delta_g: 0.2,
        });
        sink.record(Event::PsDown { round: 2 });
        let kinds: Vec<&str> = sink.take_log().events.iter().map(Event::kind).collect();
        assert_eq!(kinds, vec!["degraded_round"]);
    }

    #[test]
    fn snapshot_does_not_drain_and_preload_seeds_the_prefix() {
        let sink = TraceSink::capture(TraceGranularity::Full);
        sink.record(Event::Round {
            round: 0,
            delta: 0.1,
            flags: vec![true],
            synced: true,
        });
        let snap = sink.snapshot_log();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(sink.take_log().events.len(), 1, "snapshot must not drain");

        let resumed = TraceSink::capture(TraceGranularity::Full);
        resumed.preload(snap.events.clone());
        resumed.record(Event::Round {
            round: 1,
            delta: 0.1,
            flags: vec![true],
            synced: false,
        });
        let log = resumed.take_log();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0], snap.events[0]);
    }
}

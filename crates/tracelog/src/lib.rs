//! # selsync-tracelog
//!
//! Deterministic run-trace layer for the SelSync reproduction: a typed, versioned
//! event stream describing what a training run *decided* each round — membership,
//! per-worker sync/skip wishes, the δ the policy chose, policy regime switches (with
//! the signal values that triggered them), fault-window edges, and snapshot-ring
//! rejoin pulls — plus a line-oriented JSON codec and a first-divergence diff engine.
//!
//! The canonical form is designed so that the simulator and the threaded cluster
//! driver emit **byte-identical** logs for the same schedule:
//!
//! * no timestamps, no backend tag, no thread ids — only schedule-level facts;
//! * floats are serialized with Rust's shortest round-trippable `f32` formatting;
//! * events are buffered in a [`TraceSink`] and canonically ordered by
//!   `(round, kind, worker)` when the log is taken, so thread interleaving in the
//!   cluster driver cannot reorder lines.
//!
//! See `docs/EVENT_LOG.md` for the taxonomy and the determinism contract.

pub mod codec;
pub mod diff;
pub mod event;
pub mod sink;

pub use diff::{diff_report, explain, first_divergence, Divergence, FieldDiff};
pub use event::{
    Event, EventLog, FaultKind, PullKind, TraceGranularity, WindowEdge, TRACE_VERSION,
};
pub use sink::TraceSink;

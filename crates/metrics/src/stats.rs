//! Streaming and descriptive statistics.

use serde::{Deserialize, Serialize};

/// Welford streaming mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Streaming {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Streaming {
    /// Empty accumulator.
    pub fn new() -> Self {
        Streaming {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`NaN`-free: +inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Percentile of a sample (linear interpolation between order statistics). `q` in [0, 1].
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = pos - lo as f64;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Streaming::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_streaming_is_safe() {
        let s = Streaming::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}

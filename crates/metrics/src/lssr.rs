//! Local-to-synchronous step ratio (LSSR), Eqn. 4 of the paper.
//!
//! `LSSR = steps_local / (steps_local + steps_bsp)`. BSP has LSSR 0 (every step
//! synchronizes); pure local-SGD has LSSR 1. The communication reduction relative to BSP
//! for the same number of iterations is `1 / (1 - LSSR)`.

use serde::{Deserialize, Serialize};

/// Running counter of local vs synchronized steps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LssrCounter {
    /// Number of steps applied locally only.
    pub local_steps: u64,
    /// Number of steps that performed a synchronization (BSP-style aggregation).
    pub sync_steps: u64,
}

impl LssrCounter {
    /// New counter with no steps recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one local step.
    pub fn record_local(&mut self) {
        self.local_steps += 1;
    }

    /// Record one synchronized step.
    pub fn record_sync(&mut self) {
        self.sync_steps += 1;
    }

    /// Total steps recorded.
    pub fn total(&self) -> u64 {
        self.local_steps + self.sync_steps
    }

    /// The LSSR value (0 when no steps have been recorded).
    pub fn lssr(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.local_steps as f64 / total as f64
        }
    }

    /// Communication reduction relative to BSP for the same number of iterations:
    /// `1 / (1 - LSSR)`. Returns `f64::INFINITY` for pure local training.
    pub fn communication_reduction(&self) -> f64 {
        let l = self.lssr();
        if (1.0 - l).abs() < f64::EPSILON {
            f64::INFINITY
        } else {
            1.0 / (1.0 - l)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsp_has_zero_lssr() {
        let mut c = LssrCounter::new();
        for _ in 0..100 {
            c.record_sync();
        }
        assert_eq!(c.lssr(), 0.0);
        assert_eq!(c.communication_reduction(), 1.0);
    }

    #[test]
    fn pure_local_has_lssr_one() {
        let mut c = LssrCounter::new();
        for _ in 0..50 {
            c.record_local();
        }
        assert_eq!(c.lssr(), 1.0);
        assert!(c.communication_reduction().is_infinite());
    }

    #[test]
    fn mixed_ratio_matches_formula() {
        let mut c = LssrCounter::new();
        for _ in 0..90 {
            c.record_local();
        }
        for _ in 0..10 {
            c.record_sync();
        }
        assert!((c.lssr() - 0.9).abs() < 1e-12);
        // LSSR 0.9 => 10x communication reduction (the paper's example).
        assert!((c.communication_reduction() - 10.0).abs() < 1e-9);
        assert_eq!(c.total(), 100);
    }

    #[test]
    fn empty_counter_is_zero() {
        let c = LssrCounter::new();
        assert_eq!(c.lssr(), 0.0);
        assert_eq!(c.total(), 0);
    }
}

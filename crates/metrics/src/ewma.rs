//! Exponentially weighted moving average (EWMA) smoothing.
//!
//! The paper smooths per-iteration gradient statistics with an EWMA over a window of
//! `w` iterations (window 25 by default, smoothing factor `N/100` for an `N`-worker
//! cluster — §III-A). Gradients from a single mini-batch are noisy; the smoothed series
//! is what the relative-gradient-change rule thresholds.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An EWMA smoother with a bounded history window.
///
/// The smoothed value is the classic recursive EWMA
/// `s_i = factor * x_i + (1 - factor) * s_{i-1}`, and the window bounds how much history
/// is retained for [`Ewma::window_mean`] / overhead accounting (larger windows cost more
/// to maintain, which is what Fig. 8a of the paper measures).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ewma {
    /// Smoothing factor in `(0, 1]`.
    pub factor: f32,
    /// Maximum number of raw observations retained.
    pub window: usize,
    history: VecDeque<f32>,
    smoothed: Option<f32>,
}

impl Ewma {
    /// Create an EWMA with the given smoothing `factor` and history `window`.
    pub fn new(factor: f32, window: usize) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "EWMA factor must be in (0, 1]"
        );
        assert!(window > 0, "EWMA window must be positive");
        Ewma {
            factor,
            window,
            history: VecDeque::with_capacity(window),
            smoothed: None,
        }
    }

    /// The paper's default configuration for an `n_workers` cluster: window 25,
    /// smoothing factor `n_workers / 100` (0.16 for the 16-worker cluster).
    pub fn paper_default(n_workers: usize) -> Self {
        let factor = (n_workers as f32 / 100.0).clamp(0.01, 1.0);
        Ewma::new(factor, 25)
    }

    /// Add an observation and return the updated smoothed value.
    pub fn update(&mut self, x: f32) -> f32 {
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(x);
        let s = match self.smoothed {
            None => x,
            Some(prev) => self.factor * x + (1.0 - self.factor) * prev,
        };
        self.smoothed = Some(s);
        s
    }

    /// Current smoothed value (None before the first observation).
    pub fn value(&self) -> Option<f32> {
        self.smoothed
    }

    /// Plain mean of the retained window (used for diagnostics).
    pub fn window_mean(&self) -> Option<f32> {
        if self.history.is_empty() {
            None
        } else {
            Some(self.history.iter().sum::<f32>() / self.history.len() as f32)
        }
    }

    /// Number of retained observations.
    pub fn window_len(&self) -> usize {
        self.history.len()
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.history.clear();
        self.smoothed = None;
    }

    /// The mutable state (retained history in order, current smoothed value) — what
    /// a checkpoint stores; `factor`/`window` are rebuilt from configuration.
    pub fn state(&self) -> (Vec<f32>, Option<f32>) {
        (self.history.iter().copied().collect(), self.smoothed)
    }

    /// Restore state captured by [`Self::state`] onto a same-configured smoother.
    pub fn restore(&mut self, history: &[f32], smoothed: Option<f32>) {
        assert!(
            history.len() <= self.window,
            "restored EWMA history exceeds the window"
        );
        self.history.clear();
        self.history.extend(history.iter().copied());
        self.smoothed = smoothed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_is_passthrough() {
        let mut e = Ewma::new(0.2, 25);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(5.0), 5.0);
        assert_eq!(e.value(), Some(5.0));
    }

    #[test]
    fn smoothing_follows_recursive_definition() {
        let mut e = Ewma::new(0.5, 10);
        e.update(0.0);
        assert_eq!(e.update(10.0), 5.0);
        assert_eq!(e.update(10.0), 7.5);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.16, 25);
        for _ in 0..200 {
            e.update(3.0);
        }
        assert!((e.value().unwrap() - 3.0).abs() < 1e-4);
    }

    #[test]
    fn smoothed_value_is_bounded_by_observations() {
        let mut e = Ewma::new(0.3, 25);
        for i in 0..100 {
            let x = if i % 2 == 0 { 1.0 } else { 2.0 };
            let s = e.update(x);
            assert!((1.0..=2.0).contains(&s));
        }
    }

    #[test]
    fn window_is_bounded() {
        let mut e = Ewma::new(0.1, 4);
        for i in 0..10 {
            e.update(i as f32);
        }
        assert_eq!(e.window_len(), 4);
        assert_eq!(e.window_mean(), Some((6.0 + 7.0 + 8.0 + 9.0) / 4.0));
    }

    #[test]
    fn paper_default_for_16_workers() {
        let e = Ewma::paper_default(16);
        assert!((e.factor - 0.16).abs() < 1e-6);
        assert_eq!(e.window, 25);
    }

    #[test]
    fn reset_clears_state() {
        let mut e = Ewma::new(0.5, 5);
        e.update(1.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.window_len(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_factor_rejected() {
        let _ = Ewma::new(0.0, 5);
    }

    #[test]
    fn state_restore_round_trips_and_continues_identically() {
        let mut a = Ewma::new(0.3, 4);
        for i in 0..7 {
            a.update(i as f32 * 0.5);
        }
        let (history, smoothed) = a.state();
        let mut b = Ewma::new(0.3, 4);
        b.restore(&history, smoothed);
        assert_eq!(b.state(), a.state());
        for x in [1.25f32, -0.5, 3.0] {
            assert_eq!(a.update(x).to_bits(), b.update(x).to_bits());
        }
        assert_eq!(a.window_mean(), b.window_mean());
    }
}

//! # selsync-metrics
//!
//! Metrics and reporting utilities shared by the training algorithms and the experiment
//! harness:
//!
//! * [`ewma`] — exponentially weighted moving average, used to smooth the per-iteration
//!   gradient statistics before computing the relative gradient change `Δ(g_i)` (§III-A).
//! * [`kde`] — Gaussian kernel density estimation for the gradient / weight distribution
//!   figures (Fig. 3 and Fig. 11).
//! * [`lssr`] — the local-to-synchronous step ratio (Eqn. 4) and the communication
//!   reduction it implies.
//! * [`stats`] — streaming mean/variance and simple descriptive statistics.
//! * [`throughput`] — samples-per-second accounting used for the scaling figure (Fig. 1a).
//! * [`table`] — minimal markdown/CSV table emission for the figure/table binaries.

pub mod ewma;
pub mod kde;
pub mod lssr;
pub mod stats;
pub mod table;
pub mod throughput;

pub use ewma::Ewma;
pub use lssr::LssrCounter;

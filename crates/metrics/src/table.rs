//! Minimal report-table emission (markdown and CSV) for the figure/table binaries.
//!
//! The experiment binaries print the same rows/series the paper reports; this keeps the
//! formatting in one place and testable.

/// A simple rectangular table with a header row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the arity does not match the headers.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Render as CSV (no quoting; cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Format a float with a fixed number of decimals (helper for the binaries).
pub fn fmt_f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let mut t = Table::new(vec!["model", "speedup"]);
        t.push_row(vec!["ResNet101", "2.03"]);
        let md = t.to_markdown();
        assert!(md.contains("| model | speedup |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| ResNet101 | 2.03 |"));
    }

    #[test]
    fn csv_round() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1", "2"]);
        t.push_row(vec!["3", "4"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(std::f64::consts::PI, 2), "3.14");
        assert_eq!(fmt_f(2.0, 0), "2");
    }
}

//! Gaussian kernel density estimation.
//!
//! Fig. 3 of the paper plots KDEs of a layer's gradients at early vs late epochs, and
//! Fig. 11 compares KDEs of model weights under BSP / parameter aggregation / gradient
//! aggregation. This module provides the estimator the corresponding figure binaries
//! use.

/// A kernel density estimate evaluated on a fixed grid.
#[derive(Debug, Clone, PartialEq)]
pub struct KdeCurve {
    /// Grid points where the density is evaluated.
    pub xs: Vec<f32>,
    /// Estimated density at each grid point.
    pub density: Vec<f32>,
    /// Bandwidth used.
    pub bandwidth: f32,
}

/// Silverman's rule-of-thumb bandwidth for a Gaussian kernel.
pub fn silverman_bandwidth(samples: &[f32]) -> f32 {
    let n = samples.len().max(1) as f32;
    let mean = samples.iter().sum::<f32>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n;
    let std = var.sqrt();
    let bw = 1.06 * std * n.powf(-0.2);
    if bw <= 0.0 || !bw.is_finite() {
        1e-3
    } else {
        bw
    }
}

/// Estimate the density of `samples` with a Gaussian kernel on `grid_points` evenly
/// spaced points spanning the sample range (padded by one bandwidth on each side).
///
/// Uses Silverman's bandwidth unless `bandwidth` is supplied.
pub fn gaussian_kde(samples: &[f32], grid_points: usize, bandwidth: Option<f32>) -> KdeCurve {
    assert!(grid_points >= 2, "need at least two grid points");
    if samples.is_empty() {
        return KdeCurve {
            xs: vec![0.0; grid_points],
            density: vec![0.0; grid_points],
            bandwidth: 1.0,
        };
    }
    let bw = bandwidth
        .unwrap_or_else(|| silverman_bandwidth(samples))
        .max(1e-9);
    let min = samples.iter().cloned().fold(f32::INFINITY, f32::min) - bw;
    let max = samples.iter().cloned().fold(f32::NEG_INFINITY, f32::max) + bw;
    let step = (max - min) / (grid_points - 1) as f32;
    let norm = 1.0 / (samples.len() as f32 * bw * (2.0 * std::f32::consts::PI).sqrt());

    let xs: Vec<f32> = (0..grid_points).map(|i| min + step * i as f32).collect();
    let density: Vec<f32> = xs
        .iter()
        .map(|&x| {
            samples
                .iter()
                .map(|&s| {
                    let z = (x - s) / bw;
                    (-0.5 * z * z).exp()
                })
                .sum::<f32>()
                * norm
        })
        .collect();
    KdeCurve {
        xs,
        density,
        bandwidth: bw,
    }
}

impl KdeCurve {
    /// Numerical integral of the density over the grid (trapezoid rule); ~1 for a good fit.
    pub fn integral(&self) -> f32 {
        let mut total = 0.0;
        for i in 1..self.xs.len() {
            let dx = self.xs[i] - self.xs[i - 1];
            total += 0.5 * (self.density[i] + self.density[i - 1]) * dx;
        }
        total
    }

    /// Grid point with the highest density (the mode).
    pub fn mode(&self) -> f32 {
        self.xs
            .iter()
            .zip(self.density.iter())
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(&x, _)| x)
            .unwrap_or(0.0)
    }

    /// Width of the smallest grid interval containing `fraction` of the total density
    /// mass around the mode — a robust "spread" proxy used to compare early vs late
    /// gradient distributions (Fig. 3: late-epoch gradients concentrate near zero).
    pub fn mass_width(&self, fraction: f32) -> f32 {
        let total = self.integral().max(1e-12);
        let mode_idx = self
            .density
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut lo = mode_idx;
        let mut hi = mode_idx;
        let mut mass = 0.0f32;
        while mass / total < fraction && (lo > 0 || hi < self.xs.len() - 1) {
            // Greedily expand toward the side with higher density.
            let left = if lo > 0 { self.density[lo - 1] } else { -1.0 };
            let right = if hi < self.xs.len() - 1 {
                self.density[hi + 1]
            } else {
                -1.0
            };
            if left >= right && lo > 0 {
                let dx = self.xs[lo] - self.xs[lo - 1];
                mass += 0.5 * (self.density[lo] + self.density[lo - 1]) * dx;
                lo -= 1;
            } else if hi < self.xs.len() - 1 {
                let dx = self.xs[hi + 1] - self.xs[hi];
                mass += 0.5 * (self.density[hi] + self.density[hi + 1]) * dx;
                hi += 1;
            } else {
                break;
            }
        }
        self.xs[hi] - self.xs[lo]
    }
}

/// Symmetrised total-variation-style distance between two KDE curves evaluated on their
/// own grids; used to compare weight distributions (BSP vs PA vs GA, Fig. 11). The
/// curves are re-evaluated on a common grid by linear interpolation.
pub fn kde_distance(a: &KdeCurve, b: &KdeCurve) -> f32 {
    let lo = a.xs[0].min(b.xs[0]);
    let hi = a.xs.last().unwrap().max(*b.xs.last().unwrap());
    let points = 256;
    let step = (hi - lo) / (points - 1) as f32;
    let mut dist = 0.0;
    for i in 0..points {
        let x = lo + step * i as f32;
        dist += (interp(a, x) - interp(b, x)).abs() * step;
    }
    0.5 * dist
}

fn interp(c: &KdeCurve, x: f32) -> f32 {
    if x <= c.xs[0] || x >= *c.xs.last().unwrap() {
        return 0.0;
    }
    let idx = c.xs.partition_point(|&g| g < x).max(1);
    let (x0, x1) = (c.xs[idx - 1], c.xs[idx]);
    let (y0, y1) = (c.density[idx - 1], c.density[idx]);
    let t = (x - x0) / (x1 - x0).max(1e-12);
    y0 + t * (y1 - y0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normal_samples(n: usize, mean: f32, std: f32, seed: u64) -> Vec<f32> {
        // Simple LCG + Box-Muller to avoid a dependency here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32) / (u32::MAX >> 1) as f32
        };
        (0..n)
            .map(|_| {
                let u1: f32 = next().clamp(1e-6, 1.0);
                let u2: f32 = next();
                mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn density_integrates_to_about_one() {
        let s = normal_samples(2000, 0.0, 1.0, 3);
        let kde = gaussian_kde(&s, 200, None);
        let integral = kde.integral();
        assert!((integral - 1.0).abs() < 0.05, "integral {integral}");
    }

    #[test]
    fn mode_is_near_the_true_mean() {
        let s = normal_samples(5000, 2.0, 0.5, 7);
        let kde = gaussian_kde(&s, 300, None);
        assert!((kde.mode() - 2.0).abs() < 0.2, "mode {}", kde.mode());
    }

    #[test]
    fn narrower_distributions_have_smaller_mass_width() {
        let wide = gaussian_kde(&normal_samples(3000, 0.0, 1.0, 1), 200, None);
        let narrow = gaussian_kde(&normal_samples(3000, 0.0, 0.1, 2), 200, None);
        assert!(narrow.mass_width(0.9) < wide.mass_width(0.9));
    }

    #[test]
    fn identical_distributions_have_near_zero_distance() {
        let a = gaussian_kde(&normal_samples(2000, 0.0, 1.0, 5), 200, None);
        let b = gaussian_kde(&normal_samples(2000, 0.0, 1.0, 6), 200, None);
        let c = gaussian_kde(&normal_samples(2000, 3.0, 1.0, 7), 200, None);
        assert!(kde_distance(&a, &b) < 0.1);
        assert!(kde_distance(&a, &c) > 0.5);
    }

    #[test]
    fn empty_samples_yield_zero_density() {
        let kde = gaussian_kde(&[], 10, None);
        assert!(kde.density.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn explicit_bandwidth_is_respected() {
        let s = vec![0.0, 1.0, 2.0];
        let kde = gaussian_kde(&s, 50, Some(0.25));
        assert_eq!(kde.bandwidth, 0.25);
    }
}

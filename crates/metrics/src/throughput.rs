//! Training-throughput accounting (samples processed per second of simulated time).
//!
//! Fig. 1a of the paper plots throughput relative to a single worker as the cluster
//! grows. In this reproduction per-iteration times come from the analytical network cost
//! model; this module just does the bookkeeping.

use serde::{Deserialize, Serialize};

/// Accumulates samples processed and simulated seconds elapsed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ThroughputMeter {
    /// Total training samples processed (across all workers).
    pub samples: u64,
    /// Total simulated wall-clock seconds elapsed.
    pub seconds: f64,
}

impl ThroughputMeter {
    /// Empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one iteration that processed `samples` samples in `seconds` of simulated time.
    pub fn record(&mut self, samples: u64, seconds: f64) {
        self.samples += samples;
        self.seconds += seconds;
    }

    /// Samples per second (0 if no time elapsed).
    pub fn samples_per_sec(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.samples as f64 / self.seconds
        }
    }

    /// Throughput relative to a baseline meter (e.g. the 1-worker run in Fig. 1a).
    pub fn relative_to(&self, baseline: &ThroughputMeter) -> f64 {
        let base = baseline.samples_per_sec();
        if base <= 0.0 {
            0.0
        } else {
            self.samples_per_sec() / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_samples_over_seconds() {
        let mut m = ThroughputMeter::new();
        m.record(320, 2.0);
        m.record(320, 2.0);
        assert!((m.samples_per_sec() - 160.0).abs() < 1e-9);
    }

    #[test]
    fn relative_throughput() {
        let mut base = ThroughputMeter::new();
        base.record(100, 1.0);
        let mut big = ThroughputMeter::new();
        big.record(300, 1.0);
        assert!((big.relative_to(&base) - 3.0).abs() < 1e-9);
        assert_eq!(base.relative_to(&ThroughputMeter::new()), 0.0);
    }

    #[test]
    fn empty_meter_is_zero() {
        assert_eq!(ThroughputMeter::new().samples_per_sec(), 0.0);
    }
}

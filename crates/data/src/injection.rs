//! Randomized data-injection for non-IID training (§III-E of the paper).
//!
//! In data-injection a random subset of workers share part of their mini-batch with the
//! others on every iteration. A configuration is the tuple `(α, β)`:
//!
//! * `α` — fraction of workers randomly selected as donors each iteration,
//! * `β` — fraction of a worker's batch that is shared.
//!
//! To keep the effective batch size at the originally configured `b`, the per-worker
//! local batch is reduced to `b' = b / (1 + α·β·N)` (Eqn. 3). The communication cost per
//! iteration is `α·β·N·b'` samples, which is negligible next to model exchange — the
//! module reports it so the experiment harness can account for it.

use rand::Rng;
use selsync_tensor::rng;
use serde::{Deserialize, Serialize};

/// A data-injection configuration `(α, β)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataInjection {
    /// Fraction of workers selected as donors on each iteration.
    pub alpha: f32,
    /// Fraction of the (adjusted) batch shared by each donor.
    pub beta: f32,
}

/// The samples a worker trains on for one iteration under data-injection.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedBatch {
    /// Indices drawn from the worker's own shard.
    pub local_indices: Vec<usize>,
    /// `(donor_worker, index)` pairs pulled from other workers' shards.
    pub injected: Vec<(usize, usize)>,
    /// Bytes transferred to this worker for the injected samples.
    pub bytes_received: usize,
}

impl DataInjection {
    /// Create a configuration; both fractions must lie in `[0, 1]`.
    pub fn new(alpha: f32, beta: f32) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
        DataInjection { alpha, beta }
    }

    /// Adjusted per-worker batch size `b' = b / (1 + αβN)` (Eqn. 3), at least 1.
    pub fn adjusted_batch_size(&self, batch: usize, num_workers: usize) -> usize {
        let denom = 1.0 + self.alpha * self.beta * num_workers as f32;
        ((batch as f32 / denom).round() as usize).max(1)
    }

    /// Number of donor workers selected each iteration (`⌈α·N⌉`).
    pub fn donors(&self, num_workers: usize) -> usize {
        ((self.alpha * num_workers as f32).ceil() as usize).min(num_workers)
    }

    /// Samples each donor contributes to a receiving worker (`⌈β·b'⌉`).
    pub fn samples_per_donor(&self, adjusted_batch: usize) -> usize {
        (self.beta * adjusted_batch as f32).ceil() as usize
    }

    /// Assemble worker `receiver`'s batch for one iteration.
    ///
    /// `shards[w]` is the pool of indices owned by worker `w` (a non-IID shard, passed
    /// as anything slice-like so callers can lend borrowed views without cloning);
    /// `cursor[w]` is each worker's rotating position in its own shard so repeated calls
    /// walk through the data. `sample_bytes` is the serialized size of one sample.
    pub fn assemble_batch<S: AsRef<[usize]>>(
        &self,
        receiver: usize,
        shards: &[S],
        cursors: &mut [usize],
        batch: usize,
        sample_bytes: usize,
        rng_: &mut rng::SelRng,
    ) -> InjectedBatch {
        let num_workers = shards.len();
        assert_eq!(cursors.len(), num_workers);
        let b_prime = self.adjusted_batch_size(batch, num_workers);

        // Local portion: walk the receiver's own shard circularly.
        let mut local = Vec::with_capacity(b_prime);
        let own = shards[receiver].as_ref();
        for _ in 0..b_prime.min(own.len().max(1)) {
            if own.is_empty() {
                break;
            }
            local.push(own[cursors[receiver] % own.len()]);
            cursors[receiver] = (cursors[receiver] + 1) % own.len().max(1);
        }

        // Injected portion: pick ⌈αN⌉ random donor workers (excluding the receiver when
        // possible) and pull ⌈β·b'⌉ samples from each, chosen at random positions.
        let donors = self.donors(num_workers);
        let per_donor = self.samples_per_donor(b_prime);
        let mut injected = Vec::new();
        if donors > 0 && per_donor > 0 && num_workers > 1 {
            let candidates: Vec<usize> = (0..num_workers).filter(|&w| w != receiver).collect();
            let chosen = rng::sample_without_replacement(
                rng_,
                candidates.len(),
                donors.min(candidates.len()),
            );
            for ci in chosen {
                let donor = candidates[ci];
                let pool = shards[donor].as_ref();
                if pool.is_empty() {
                    continue;
                }
                for _ in 0..per_donor {
                    let pick = pool[rng_.gen_range(0..pool.len())];
                    injected.push((donor, pick));
                }
            }
        }
        let bytes_received = injected.len() * sample_bytes;
        InjectedBatch {
            local_indices: local,
            injected,
            bytes_received,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjusted_batch_matches_paper_examples() {
        // Paper §IV-E: b = 32, N = 10 non-IID workers.
        // (0.5, 0.5): b' = 32 / (1 + 0.25 * 10) = 9.14 -> 9 (paper reports 11 with N=6 effective
        // worker count; we follow Eqn. 3 exactly).
        let c = DataInjection::new(0.5, 0.5);
        assert_eq!(c.adjusted_batch_size(32, 10), 9);
        let c2 = DataInjection::new(0.75, 0.75);
        // 32 / (1 + 0.5625*10) = 4.8 -> 5
        assert_eq!(c2.adjusted_batch_size(32, 10), 5);
        // Degenerate no-injection config keeps the batch unchanged.
        let c3 = DataInjection::new(0.0, 0.0);
        assert_eq!(c3.adjusted_batch_size(32, 10), 32);
    }

    #[test]
    fn adjusted_batch_never_zero() {
        let c = DataInjection::new(1.0, 1.0);
        assert_eq!(c.adjusted_batch_size(2, 64), 1);
    }

    #[test]
    fn donor_and_per_donor_counts() {
        let c = DataInjection::new(0.5, 0.5);
        assert_eq!(c.donors(16), 8);
        assert_eq!(c.samples_per_donor(9), 5);
        assert_eq!(DataInjection::new(0.0, 0.5).donors(16), 0);
    }

    #[test]
    fn assemble_batch_mixes_local_and_foreign_samples() {
        let c = DataInjection::new(0.5, 0.5);
        // 4 workers, each owning a disjoint range of 100 indices.
        let shards: Vec<Vec<usize>> = (0..4).map(|w| (w * 100..(w + 1) * 100).collect()).collect();
        let mut cursors = vec![0usize; 4];
        let mut r = rng::seeded(9);
        let batch = c.assemble_batch(0, &shards, &mut cursors, 32, 3 * 1024, &mut r);
        // Local samples come from worker 0's shard.
        assert!(batch.local_indices.iter().all(|&i| i < 100));
        assert!(!batch.local_indices.is_empty());
        // Injected samples come from other shards.
        assert!(!batch.injected.is_empty());
        assert!(batch
            .injected
            .iter()
            .all(|&(w, i)| w != 0 && i >= w * 100 && i < (w + 1) * 100));
        assert_eq!(batch.bytes_received, batch.injected.len() * 3 * 1024);
    }

    #[test]
    fn no_injection_config_pulls_nothing() {
        let c = DataInjection::new(0.0, 0.0);
        let shards: Vec<Vec<usize>> = (0..4).map(|w| (w * 10..(w + 1) * 10).collect()).collect();
        let mut cursors = vec![0usize; 4];
        let mut r = rng::seeded(1);
        let batch = c.assemble_batch(2, &shards, &mut cursors, 8, 100, &mut r);
        assert!(batch.injected.is_empty());
        assert_eq!(batch.bytes_received, 0);
        assert_eq!(batch.local_indices.len(), 8);
    }

    #[test]
    fn injection_improves_label_coverage() {
        // Receiver owns only label-0 samples; with injection it should see other labels.
        use crate::noniid::label_sharded;
        use crate::synthetic::{gaussian_mixture, MixtureSpec};
        let d = gaussian_mixture(&MixtureSpec::cifar10_like(500), 3);
        let split = label_sharded(&d, 10, 1);
        let c = DataInjection::new(0.5, 0.5);
        let mut cursors = vec![0usize; 10];
        let mut r = rng::seeded(4);
        let batch = c.assemble_batch(
            0,
            &split.per_worker,
            &mut cursors,
            32,
            d.sample_bytes,
            &mut r,
        );
        let mut labels: Vec<usize> = batch
            .local_indices
            .iter()
            .copied()
            .chain(batch.injected.iter().map(|&(_, i)| i))
            .map(|i| d.targets()[i])
            .collect();
        labels.sort_unstable();
        labels.dedup();
        assert!(labels.len() > 1, "injection should bring in other labels");
    }

    #[test]
    #[should_panic]
    fn invalid_alpha_panics() {
        let _ = DataInjection::new(1.5, 0.5);
    }
}

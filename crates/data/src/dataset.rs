//! In-memory datasets and batching.

use selsync_tensor::Tensor;

/// An in-memory supervised dataset: a `(n, d)` input tensor and `n` integer targets.
///
/// For classification tasks the rows are feature vectors; for the language-model task
/// the rows are token-id contexts (stored as `f32`) and the target is the next token.
#[derive(Debug, Clone)]
pub struct Dataset {
    inputs: Tensor,
    targets: Vec<usize>,
    /// Nominal serialized size of one sample in bytes (used to cost data-injection
    /// transfers; e.g. ~3 KB for CIFAR images, 10–150 KB for ImageNet).
    pub sample_bytes: usize,
    /// Number of distinct classes (or vocabulary size for LM data).
    pub num_classes: usize,
}

impl Dataset {
    /// Create a dataset from parts. Panics if `inputs.rows() != targets.len()`.
    pub fn new(
        inputs: Tensor,
        targets: Vec<usize>,
        num_classes: usize,
        sample_bytes: usize,
    ) -> Self {
        assert_eq!(
            inputs.rows(),
            targets.len(),
            "inputs/targets length mismatch"
        );
        Dataset {
            inputs,
            targets,
            sample_bytes,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Feature dimensionality of one sample.
    pub fn input_dim(&self) -> usize {
        self.inputs.cols()
    }

    /// All targets.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// All inputs.
    pub fn inputs(&self) -> &Tensor {
        &self.inputs
    }

    /// Materialise the batch with the given sample indices.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let mut x = Tensor::zeros(0, 0);
        let mut y = Vec::new();
        self.batch_into(indices, &mut x, &mut y);
        (x, y)
    }

    /// Materialise a batch into caller-owned buffers, reusing their allocations —
    /// steady-state training assembles every mini-batch without allocating.
    pub fn batch_into(&self, indices: &[usize], x: &mut Tensor, y: &mut Vec<usize>) {
        self.inputs.gather_rows_into(indices, x);
        y.clear();
        y.extend(indices.iter().map(|&i| self.targets[i]));
    }

    /// Split into `(train, test)` datasets at `train_fraction` (deterministic split on
    /// index order; callers shuffle beforehand if they need randomised splits).
    pub fn split(&self, train_fraction: f32) -> (Dataset, Dataset) {
        let n_train = ((self.len() as f32) * train_fraction).round() as usize;
        let n_train = n_train.min(self.len());
        let train_idx: Vec<usize> = (0..n_train).collect();
        let test_idx: Vec<usize> = (n_train..self.len()).collect();
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// Dataset restricted to the given indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let (inputs, targets) = self.batch(indices);
        Dataset {
            inputs,
            targets,
            sample_bytes: self.sample_bytes,
            num_classes: self.num_classes,
        }
    }

    /// Number of samples per class label.
    pub fn label_histogram(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &t in &self.targets {
            if t < counts.len() {
                counts[t] += 1;
            }
        }
        counts
    }

    /// Indices of all samples with the given label.
    pub fn indices_with_label(&self, label: usize) -> Vec<usize> {
        self.targets
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| if t == label { Some(i) } else { None })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let inputs = Tensor::from_fn(6, 2, |r, c| (r * 2 + c) as f32);
        Dataset::new(inputs, vec![0, 1, 0, 1, 2, 2], 3, 100)
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 6);
        assert_eq!(d.input_dim(), 2);
        assert_eq!(d.num_classes, 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn batch_gathers_rows_and_labels() {
        let d = toy();
        let (x, y) = d.batch(&[4, 0]);
        assert_eq!(x.row(0), &[8.0, 9.0]);
        assert_eq!(x.row(1), &[0.0, 1.0]);
        assert_eq!(y, vec![2, 0]);
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy();
        let (train, test) = d.split(0.5);
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 3);
        assert_eq!(train.targets(), &[0, 1, 0]);
        assert_eq!(test.targets(), &[1, 2, 2]);
    }

    #[test]
    fn label_histogram_and_label_lookup() {
        let d = toy();
        assert_eq!(d.label_histogram(), vec![2, 2, 2]);
        assert_eq!(d.indices_with_label(2), vec![4, 5]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = Dataset::new(Tensor::zeros(3, 2), vec![0, 1], 2, 10);
    }
}

//! Non-IID (label-sharded) data splits.
//!
//! The paper's non-IID experiments (§II-B, §IV-E / Fig. 1b and Fig. 12) split CIFAR10
//! across 10 workers with **1 label per worker** and CIFAR100 with **10 labels per
//! worker**. This module reproduces exactly that: each worker receives all samples of
//! its assigned label set and nothing else.

use crate::dataset::Dataset;

/// Assignment of sample indices to workers under a label-sharded split.
#[derive(Debug, Clone)]
pub struct NonIidSplit {
    /// `per_worker[w]` = indices of the samples owned by worker `w`.
    pub per_worker: Vec<Vec<usize>>,
    /// `labels_per_worker[w]` = labels assigned to worker `w`.
    pub labels_per_worker: Vec<Vec<usize>>,
}

/// Split `dataset` across `num_workers` workers giving each worker `labels_per_worker`
/// distinct labels (labels are dealt round-robin in label order, as in the paper's
/// 1-label-per-worker CIFAR10 and 10-labels-per-worker CIFAR100 settings).
pub fn label_sharded(
    dataset: &Dataset,
    num_workers: usize,
    labels_per_worker: usize,
) -> NonIidSplit {
    assert!(num_workers > 0);
    assert!(
        labels_per_worker * num_workers >= dataset.num_classes,
        "label shards ({labels_per_worker} x {num_workers}) cannot cover {} classes",
        dataset.num_classes
    );
    let mut labels: Vec<Vec<usize>> = vec![Vec::new(); num_workers];
    for label in 0..dataset.num_classes {
        let w = (label / labels_per_worker) % num_workers;
        labels[w].push(label);
    }
    let per_worker: Vec<Vec<usize>> = labels
        .iter()
        .map(|ls| {
            let mut idx: Vec<usize> = ls
                .iter()
                .flat_map(|&l| dataset.indices_with_label(l))
                .collect();
            idx.sort_unstable();
            idx
        })
        .collect();
    NonIidSplit {
        per_worker,
        labels_per_worker: labels,
    }
}

/// Degree of label imbalance of a worker's shard: 1.0 means the worker sees exactly one
/// label, approaching 0 as the shard covers all labels uniformly.
pub fn skewness(dataset: &Dataset, indices: &[usize]) -> f32 {
    if indices.is_empty() {
        return 0.0;
    }
    let mut counts = vec![0usize; dataset.num_classes];
    for &i in indices {
        counts[dataset.targets()[i]] += 1;
    }
    let present = counts.iter().filter(|&&c| c > 0).count() as f32;
    1.0 - (present - 1.0) / (dataset.num_classes.max(2) - 1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{gaussian_mixture, MixtureSpec};

    fn cifar10ish() -> Dataset {
        gaussian_mixture(&MixtureSpec::cifar10_like(500), 1)
    }

    #[test]
    fn one_label_per_worker_matches_paper_setting() {
        let d = cifar10ish();
        let split = label_sharded(&d, 10, 1);
        assert_eq!(split.per_worker.len(), 10);
        for (w, idx) in split.per_worker.iter().enumerate() {
            assert!(!idx.is_empty());
            // Every sample on worker w has the single label assigned to w.
            let label = split.labels_per_worker[w][0];
            assert!(idx.iter().all(|&i| d.targets()[i] == label));
            assert!((skewness(&d, idx) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn shards_cover_all_samples_exactly_once() {
        let d = cifar10ish();
        let split = label_sharded(&d, 10, 1);
        let mut all: Vec<usize> = split.per_worker.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..d.len()).collect::<Vec<_>>());
    }

    #[test]
    fn ten_labels_per_worker_on_cifar100_like() {
        let d = gaussian_mixture(&MixtureSpec::cifar100_like(1000), 2);
        let split = label_sharded(&d, 10, 10);
        for (w, labels) in split.labels_per_worker.iter().enumerate() {
            assert_eq!(labels.len(), 10, "worker {w}");
        }
        let skew = skewness(&d, &split.per_worker[0]);
        assert!(skew > 0.85 && skew < 1.0, "skew {skew}");
    }

    #[test]
    fn iid_shard_has_low_skewness() {
        let d = cifar10ish();
        // A contiguous index range contains every label (labels are assigned round-robin).
        let iid_slice: Vec<usize> = (0..100).collect();
        assert!(skewness(&d, &iid_slice) < 0.05);
    }

    #[test]
    #[should_panic]
    fn insufficient_label_coverage_panics() {
        let d = cifar10ish();
        let _ = label_sharded(&d, 3, 1); // 3 workers x 1 label < 10 classes
    }
}

//! Data partitioning schemes: DefDP and SelDP (§III-D, Fig. 7 of the paper).
//!
//! * **DefDP** (default data-partitioning) splits the sample indices into `N` disjoint
//!   contiguous chunks; worker `n` only ever sees chunk `n`. This is the standard
//!   partitioning used by BSP and is what the paper shows breaks down under
//!   semi-synchronous training (Fig. 9).
//! * **SelDP** (SelSync data-partitioning) gives every worker the *whole* index
//!   sequence, organised as a circular queue of the same `N` chunks whose head is
//!   rotated to the worker's own chunk. Every worker can learn from all data during
//!   local phases, and when a step does synchronize the workers are positioned over
//!   distinct chunks, so no two workers redundantly process the same chunk on a given
//!   iteration.
//!
//! The partitioners operate purely on indices, so the same code serves the synthetic
//! datasets here and would serve real datasets unchanged.

use serde::{Deserialize, Serialize};

/// Which partitioning scheme to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionScheme {
    /// Default partitioning: disjoint contiguous chunks, one per worker.
    DefDp,
    /// SelSync partitioning: full circular queue rotated by worker rank.
    SelDp,
}

impl PartitionScheme {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionScheme::DefDp => "DefDP",
            PartitionScheme::SelDp => "SelDP",
        }
    }
}

/// A worker's view of the training data: an ordered sequence of sample indices plus a
/// cursor that yields successive mini-batches, wrapping around at the end of the
/// sequence (one wrap = one local epoch).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerPartition {
    /// Worker id (rank) this partition belongs to.
    pub worker: usize,
    order: Vec<usize>,
    cursor: usize,
    /// How many times the cursor has wrapped (completed passes over `order`).
    pub epochs_completed: usize,
}

impl WorkerPartition {
    /// Build the partition for `worker` out of `num_samples` samples split across
    /// `num_workers` workers under `scheme`.
    pub fn build(
        scheme: PartitionScheme,
        num_samples: usize,
        num_workers: usize,
        worker: usize,
    ) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        assert!(
            worker < num_workers,
            "worker id {worker} out of range for {num_workers} workers"
        );
        let chunks = chunk_boundaries(num_samples, num_workers);
        let order = match scheme {
            PartitionScheme::DefDp => {
                let (start, end) = chunks[worker];
                (start..end).collect()
            }
            PartitionScheme::SelDp => {
                // Circular queue of all chunks, head rotated to this worker's chunk.
                let mut order = Vec::with_capacity(num_samples);
                for k in 0..num_workers {
                    let (start, end) = chunks[(worker + k) % num_workers];
                    order.extend(start..end);
                }
                order
            }
        };
        WorkerPartition {
            worker,
            order,
            cursor: 0,
            epochs_completed: 0,
        }
    }

    /// The full ordered index sequence.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Number of samples this worker can draw from before wrapping.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Draw the next mini-batch of `batch_size` indices, wrapping circularly.
    pub fn next_batch(&mut self, batch_size: usize) -> Vec<usize> {
        assert!(
            !self.order.is_empty(),
            "cannot sample from an empty partition"
        );
        let mut out = Vec::with_capacity(batch_size);
        for _ in 0..batch_size {
            out.push(self.order[self.cursor]);
            self.cursor += 1;
            if self.cursor == self.order.len() {
                self.cursor = 0;
                self.epochs_completed += 1;
            }
        }
        out
    }

    /// Reset the cursor to the head of the queue.
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.epochs_completed = 0;
    }
}

/// `(start, end)` boundaries of the `num_workers` contiguous chunks of `num_samples`
/// samples; the first `num_samples % num_workers` chunks get one extra sample.
pub fn chunk_boundaries(num_samples: usize, num_workers: usize) -> Vec<(usize, usize)> {
    let base = num_samples / num_workers;
    let extra = num_samples % num_workers;
    let mut out = Vec::with_capacity(num_workers);
    let mut start = 0;
    for w in 0..num_workers {
        let len = base + usize::from(w < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Build the partitions for every worker at once (what the preprocessing stage does
/// before training; its cost is Fig. 8b of the paper).
pub fn build_all(
    scheme: PartitionScheme,
    num_samples: usize,
    num_workers: usize,
) -> Vec<WorkerPartition> {
    (0..num_workers)
        .map(|w| WorkerPartition::build(scheme, num_samples, num_workers, w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_boundaries_cover_everything() {
        let b = chunk_boundaries(10, 3);
        assert_eq!(b, vec![(0, 4), (4, 7), (7, 10)]);
        let b = chunk_boundaries(8, 4);
        assert_eq!(b, vec![(0, 2), (2, 4), (4, 6), (6, 8)]);
    }

    #[test]
    fn defdp_partitions_are_disjoint_and_complete() {
        let parts = build_all(PartitionScheme::DefDp, 100, 4);
        let mut all: Vec<usize> = parts.iter().flat_map(|p| p.order().to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        assert!(parts.iter().all(|p| p.len() == 25));
    }

    #[test]
    fn seldp_gives_every_worker_all_samples() {
        let parts = build_all(PartitionScheme::SelDp, 100, 4);
        for p in &parts {
            let mut sorted = p.order().to_vec();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                (0..100).collect::<Vec<_>>(),
                "worker {} sees all data",
                p.worker
            );
        }
    }

    #[test]
    fn seldp_heads_are_distinct_chunks() {
        // Paper Fig. 7b: worker k's queue starts at chunk k, so on a synchronized first
        // iteration no two workers read the same chunk.
        let parts = build_all(PartitionScheme::SelDp, 16, 4);
        assert_eq!(&parts[0].order()[..4], &[0, 1, 2, 3]);
        assert_eq!(&parts[1].order()[..4], &[4, 5, 6, 7]);
        assert_eq!(&parts[2].order()[..4], &[8, 9, 10, 11]);
        assert_eq!(&parts[3].order()[..4], &[12, 13, 14, 15]);
        // And the queue is circular: worker 3 continues into chunk 0.
        assert_eq!(&parts[3].order()[4..8], &[0, 1, 2, 3]);
    }

    #[test]
    fn next_batch_wraps_and_counts_epochs() {
        let mut p = WorkerPartition::build(PartitionScheme::DefDp, 10, 2, 0);
        assert_eq!(p.len(), 5);
        let b1 = p.next_batch(3);
        assert_eq!(b1, vec![0, 1, 2]);
        let b2 = p.next_batch(3);
        assert_eq!(b2, vec![3, 4, 0]);
        assert_eq!(p.epochs_completed, 1);
        p.reset();
        assert_eq!(p.next_batch(2), vec![0, 1]);
        assert_eq!(p.epochs_completed, 0);
    }

    #[test]
    fn uneven_sample_counts_are_distributed() {
        let parts = build_all(PartitionScheme::DefDp, 11, 4);
        let lens: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(lens, vec![3, 3, 3, 2]);
        let total: usize = lens.iter().sum();
        assert_eq!(total, 11);
    }

    #[test]
    #[should_panic]
    fn worker_out_of_range_panics() {
        let _ = WorkerPartition::build(PartitionScheme::DefDp, 10, 2, 2);
    }

    #[test]
    fn scheme_names() {
        assert_eq!(PartitionScheme::DefDp.name(), "DefDP");
        assert_eq!(PartitionScheme::SelDp.name(), "SelDP");
    }
}

//! # selsync-data
//!
//! Data substrate for the SelSync reproduction: synthetic datasets standing in for
//! CIFAR10/100, ImageNet-1K and WikiText-103, plus the partitioning machinery the paper
//! introduces.
//!
//! * [`dataset`] — in-memory datasets (`inputs` tensor + integer targets) with batching.
//! * [`synthetic`] — deterministic generators: Gaussian-mixture classification tasks and
//!   a Markov-chain token stream for the language model.
//! * [`partition`] — **DefDP** (default contiguous partitioning) and **SelDP** (the
//!   paper's circular-queue partitioning, §III-D / Fig. 7).
//! * [`noniid`] — label-sharded non-IID splits (e.g. 1 label per worker for CIFAR10).
//! * [`injection`] — randomized data-injection for non-IID training (§III-E, Eqn. 3).
//!
//! The substitution rationale: all of the paper's partitioning and injection machinery
//! operates on *sample indices and labels*, never on pixel/token content, so synthetic
//! datasets with the same cardinalities and label structure exercise identical code
//! paths.

pub mod dataset;
pub mod injection;
pub mod noniid;
pub mod partition;
pub mod synthetic;

pub use dataset::Dataset;
pub use injection::DataInjection;
pub use partition::{PartitionScheme, WorkerPartition};

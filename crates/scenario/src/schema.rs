//! The declarative scenario schema and its TOML binding.
//!
//! A [`Scenario`] fully describes one reproducible experiment over an imperfect
//! cluster: the workload (model, batch size, iterations, dataset sizes), the cluster
//! topology and per-worker device heterogeneity, the base network, the SelSync δ, and a
//! timed fault schedule. `scenario + seed` determines every bit of the resulting run
//! reports, so a scenario file doubles as a regression-test fixture.

use crate::toml::{self, Document, Table, Value};
use selsync::conditions::{ClusterConditions, FaultEvent};
use selsync::config::{CheckpointSpec, RejoinPull, TrainConfig};
use selsync::policy::PolicySpec;
use selsync_comm::faults::{CommFaultSpec, PsFaultSpec};
use selsync_comm::NetworkModel;
use selsync_nn::model::ModelKind;
use selsync_tracelog::TraceGranularity;

/// Serialize the shortest f32 representation (a raw f32→f64 cast would print 0.3 as
/// 0.30000001192092896); parsing back through f64 reproduces the f32 exactly.
fn f32_shortest(x: f32) -> f64 {
    format!("{x}").parse().unwrap_or(x as f64)
}

/// Declarative description of a fault, mirroring
/// [`selsync::conditions::FaultEvent`] with file-friendly field names and units.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// `kind = "slowdown"`: worker computes `factor`× slower during the window.
    Slowdown {
        /// Affected worker.
        worker: usize,
        /// First affected iteration.
        start: usize,
        /// Window length in iterations.
        duration: usize,
        /// Compute-time multiplier.
        factor: f64,
    },
    /// `kind = "crash"`: worker is absent from `start` until `rejoin` (forever if
    /// omitted).
    Crash {
        /// Affected worker.
        worker: usize,
        /// First absent iteration.
        start: usize,
        /// First iteration back, if any.
        rejoin: Option<usize>,
    },
    /// `kind = "bandwidth"`: cluster-wide bandwidth multiplied by `factor` (< 1 =
    /// degraded) during the window.
    Bandwidth {
        /// First affected iteration.
        start: usize,
        /// Window length in iterations.
        duration: usize,
        /// Bandwidth multiplier.
        factor: f64,
    },
    /// `kind = "latency"`: `extra_ms` added to one-way latency during the window.
    Latency {
        /// First affected iteration.
        start: usize,
        /// Window length in iterations.
        duration: usize,
        /// Added one-way latency in milliseconds.
        extra_ms: f64,
    },
}

impl FaultSpec {
    /// Compile to the runtime event type.
    pub fn to_event(&self) -> FaultEvent {
        match *self {
            FaultSpec::Slowdown {
                worker,
                start,
                duration,
                factor,
            } => FaultEvent::Slowdown {
                worker,
                start,
                duration,
                factor,
            },
            FaultSpec::Crash {
                worker,
                start,
                rejoin,
            } => FaultEvent::Crash {
                worker,
                start,
                rejoin,
            },
            FaultSpec::Bandwidth {
                start,
                duration,
                factor,
            } => FaultEvent::BandwidthDegradation {
                start,
                duration,
                factor,
            },
            FaultSpec::Latency {
                start,
                duration,
                extra_ms,
            } => FaultEvent::LatencySpike {
                start,
                duration,
                extra_latency_s: extra_ms / 1e3,
            },
        }
    }
}

/// The sweep block of a scenario: a δ grid × seed set × extra policy arms, expanded by
/// [`crate::sweep::run_sweep`] into one SelSync run per (arm, seed) and aggregated into
/// a single mean ± spread comparison report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Fixed-δ arms (each entry is one `SelSync(d=…)` arm).
    pub deltas: Vec<f32>,
    /// Seeds every arm runs at (the spread axis).
    pub seeds: Vec<u64>,
    /// Additional policy arms (scheduled / adaptive δ).
    pub policies: Vec<PolicySpec>,
}

impl SweepSpec {
    /// The default grid used when a scenario has no `[sweep]` block: a small δ grid
    /// around the paper's operating points, three seeds derived from the scenario
    /// seed, and the default adaptive arm.
    pub fn default_grid(seed: u64) -> Self {
        SweepSpec {
            deltas: vec![0.0, 0.05, 0.15, 0.3, 0.6],
            seeds: vec![seed, seed.wrapping_add(1), seed.wrapping_add(2)],
            policies: vec![PolicySpec::adaptive_default()],
        }
    }

    /// Total number of arms (fixed δs plus policies).
    pub fn arm_count(&self) -> usize {
        self.deltas.len() + self.policies.len()
    }

    /// Check internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.arm_count() == 0 {
            return Err("sweep needs at least one arm (a delta or a policy)".into());
        }
        if self.seeds.is_empty() {
            return Err("sweep needs at least one seed".into());
        }
        // Seeds are serialized as TOML integers (i64); larger values could not
        // round-trip through the codec.
        if self.seeds.iter().any(|&s| s > i64::MAX as u64) {
            return Err("sweep seeds must fit a TOML integer (i64)".into());
        }
        for &d in &self.deltas {
            if !(d >= 0.0 && d.is_finite()) {
                return Err("sweep deltas must be finite non-negative numbers".into());
            }
        }
        for p in &self.policies {
            p.validate().map_err(|e| format!("sweep policy: {e}"))?;
        }
        Ok(())
    }
}

/// The optional `[trace]` block: deterministic event-log capture for the scenario's
/// SelSync arm (see `docs/EVENT_LOG.md`). Disabled by default — the block is only
/// serialized when any setting differs from the default, so pre-existing scenario
/// dumps stay byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Capture the event log (`enabled = true`).
    pub enabled: bool,
    /// Where the runner writes the encoded log; `None` means the caller decides
    /// (the CLI tools derive `<scenario>.trace.jsonl` next to their other outputs).
    pub path: Option<String>,
    /// Event granularity: `"full"` (default; every event kind) or `"rounds"`
    /// (header, membership and round decisions only).
    pub granularity: TraceGranularity,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            enabled: false,
            path: None,
            granularity: TraceGranularity::Full,
        }
    }
}

impl TraceSpec {
    /// Check internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(path) = &self.path {
            if path.is_empty() {
                return Err("trace path must not be empty when given".into());
            }
        }
        Ok(())
    }
}

/// Which transport carries the cluster's wire envelopes
/// (`transport = "memory" | "socket"` in the `[scenario]` section; memory when
/// omitted). The in-memory transports serve the simulator and thread-per-worker
/// backends; `"socket"` selects the multi-process backend (`scenario_cluster`),
/// which runs one OS process per worker over UDS — or TCP when
/// `transport_addr = "host:port"` is given. See `docs/TRANSPORT.md`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TransportSpec {
    /// Shared-address-space delivery (the default; both in-process backends).
    #[default]
    Memory,
    /// Length-prefixed socket transport between OS processes: UDS when `addr`
    /// is `None`, TCP on the given `host:port` otherwise.
    Socket {
        /// TCP listen/connect address; `None` selects a Unix domain socket.
        addr: Option<String>,
    },
}

/// Base network description in file-friendly units.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Link bandwidth in Gbit/s.
    pub bandwidth_gbps: f64,
    /// One-way latency in milliseconds.
    pub latency_ms: f64,
}

impl NetworkSpec {
    /// The paper's 5 Gbps testbed.
    pub fn paper() -> Self {
        NetworkSpec {
            bandwidth_gbps: 5.0,
            latency_ms: 1.0,
        }
    }

    /// Compile to the cost-model type (software overhead keeps the paper's value).
    pub fn to_model(&self) -> NetworkModel {
        let mut net = NetworkModel::paper_5gbps();
        net.bandwidth_bps = self.bandwidth_gbps * 1e9;
        net.latency_s = self.latency_ms / 1e3;
        net
    }
}

/// A declarative, deterministic experiment over an imperfect cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (used in reports and file names).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// RNG seed: same scenario + same seed ⇒ bit-identical reports.
    pub seed: u64,
    /// Cluster size.
    pub workers: usize,
    /// Workload model (`"resnet"`, `"vgg"`, `"alexnet"`, `"transformer"`).
    pub model: ModelKind,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// Training iterations.
    pub iterations: usize,
    /// Training-set size.
    pub train_samples: usize,
    /// Held-out set size.
    pub test_samples: usize,
    /// Evaluate every this many iterations.
    pub eval_every: usize,
    /// Evaluation sample cap.
    pub eval_samples: usize,
    /// SelSync threshold δ used by the SelSync arm of the comparison.
    pub delta: f32,
    /// Base interconnect.
    pub network: NetworkSpec,
    /// Per-worker base speed multipliers (empty = homogeneous fleet).
    pub heterogeneity: Vec<f64>,
    /// Timed fault schedule.
    pub faults: Vec<FaultSpec>,
    /// Optional sweep block (δ grid × seed set × policy arms); `None` means
    /// [`crate::sweep::run_sweep`] falls back to [`SweepSpec::default_grid`].
    pub sweep: Option<SweepSpec>,
    /// Rejoin-pull semantics for the thread-per-worker driver
    /// (`rejoin_pull = "wall-clock" | "scheduled"` in the `[scenario]` section;
    /// wall-clock when omitted). `"scheduled"` makes crash/rejoin schedules
    /// deterministic in the threaded driver — a rejoiner pulls the last *scheduled*
    /// global from the PS snapshot ring — extending simulator parity to faulty
    /// schedules. The simulator itself is unaffected.
    pub rejoin_pull: RejoinPull,
    /// Transport selection for the cluster binary (`transport = "socket"` plus
    /// optional `transport_addr` in the `[scenario]` section; in-memory when
    /// omitted). Only `scenario_cluster` acts on it — the in-process backends
    /// always use memory transports.
    pub transport: TransportSpec,
    /// Optional event-log capture settings (`[trace]` section; disabled when omitted).
    pub trace: TraceSpec,
    /// Optional message-fault weather (`[comm_faults]` section; lossless links when
    /// omitted). Per-leg drop/duplicate/corrupt/delay rates plus the retry budget
    /// and logical timeout — a pure function of `(seed, worker, round, attempt,
    /// leg)`, so faulty runs stay bit-deterministic (see `docs/COMM_FAULTS.md`).
    pub comm_faults: Option<CommFaultSpec>,
    /// Optional parameter-server availability schedule (`[ps_faults]` section; the
    /// server is perfectly reliable when omitted). Scheduled outage windows plus a
    /// seeded per-round brownout probability — a pure function of `(seed, round)`,
    /// so outage runs stay bit-deterministic (see `docs/RECOVERY.md`).
    pub ps_faults: Option<PsFaultSpec>,
    /// Optional durable-checkpoint policy (`[checkpoint]` section; nothing is
    /// written when omitted): both SelSync backends persist a full recovery image
    /// every `every` rounds under `dir`. The `halt_after` kill switch is a
    /// runtime/CLI knob, not normally part of a scenario file.
    pub checkpoint: Option<CheckpointSpec>,
    /// Optional non-IID data partitioning (`non_iid_labels_per_worker = K` in the
    /// `[scenario]` section; IID when omitted): each worker's shard draws from at
    /// most `K` labels of the label-grouped training set, built once with the
    /// simulator's shard construction. All backends honor it; data-injection over
    /// non-IID shards stays simulator-only.
    pub non_iid_labels_per_worker: Option<usize>,
}

fn model_name(kind: ModelKind) -> &'static str {
    match kind {
        ModelKind::ResNetLike => "resnet",
        ModelKind::VggLike => "vgg",
        ModelKind::AlexLike => "alexnet",
        ModelKind::TransformerLike => "transformer",
    }
}

fn model_from_name(name: &str) -> Result<ModelKind, String> {
    match name {
        "resnet" => Ok(ModelKind::ResNetLike),
        "vgg" => Ok(ModelKind::VggLike),
        "alexnet" => Ok(ModelKind::AlexLike),
        "transformer" => Ok(ModelKind::TransformerLike),
        other => Err(format!(
            "unknown model {other:?} (expected resnet | vgg | alexnet | transformer)"
        )),
    }
}

fn get_usize(t: &Table, key: &str, ctx: &str) -> Result<usize, String> {
    let v = t
        .get(key)
        .ok_or_else(|| format!("{ctx}: missing key {key:?}"))?;
    let i = v
        .as_int()
        .ok_or_else(|| format!("{ctx}: {key} must be an integer"))?;
    usize::try_from(i).map_err(|_| format!("{ctx}: {key} must be non-negative"))
}

fn get_f64(t: &Table, key: &str, ctx: &str) -> Result<f64, String> {
    t.get(key)
        .ok_or_else(|| format!("{ctx}: missing key {key:?}"))?
        .as_float()
        .ok_or_else(|| format!("{ctx}: {key} must be a number"))
}

fn get_str<'a>(t: &'a Table, key: &str, ctx: &str) -> Result<&'a str, String> {
    t.get(key)
        .ok_or_else(|| format!("{ctx}: missing key {key:?}"))?
        .as_str()
        .ok_or_else(|| format!("{ctx}: {key} must be a string"))
}

fn get_f32_array(t: &Table, key: &str, ctx: &str) -> Result<Vec<f32>, String> {
    t.get(key)
        .ok_or_else(|| format!("{ctx}: missing key {key:?}"))?
        .as_array()
        .ok_or_else(|| format!("{ctx}: {key} must be an array"))?
        .iter()
        .map(|v| {
            v.as_float()
                .map(|f| f as f32)
                .ok_or_else(|| format!("{ctx}: {key} entries must be numbers"))
        })
        .collect()
}

fn get_usize_array(t: &Table, key: &str, ctx: &str) -> Result<Vec<usize>, String> {
    t.get(key)
        .ok_or_else(|| format!("{ctx}: missing key {key:?}"))?
        .as_array()
        .ok_or_else(|| format!("{ctx}: {key} must be an array"))?
        .iter()
        .map(|v| {
            v.as_int()
                .and_then(|i| usize::try_from(i).ok())
                .ok_or_else(|| format!("{ctx}: {key} entries must be non-negative integers"))
        })
        .collect()
}

/// Serialize one policy arm as a `[[policy]]` table.
fn policy_to_table(policy: &PolicySpec) -> Table {
    let mut t = Table::new();
    match policy {
        PolicySpec::Fixed { delta } => {
            t.set("kind", Value::Str("fixed".into()));
            t.set("delta", Value::Float(f32_shortest(*delta)));
        }
        PolicySpec::Schedule { starts, deltas } => {
            t.set("kind", Value::Str("schedule".into()));
            t.set(
                "starts",
                Value::Array(starts.iter().map(|&s| Value::Int(s as i64)).collect()),
            );
            t.set(
                "deltas",
                Value::Array(
                    deltas
                        .iter()
                        .map(|&d| Value::Float(f32_shortest(d)))
                        .collect(),
                ),
            );
        }
        PolicySpec::Adaptive {
            delta_explore,
            delta_exploit,
            factor,
            warmup,
            settle,
            patience,
            spike,
        } => {
            t.set("kind", Value::Str("adaptive".into()));
            t.set("delta_explore", Value::Float(f32_shortest(*delta_explore)));
            t.set("delta_exploit", Value::Float(f32_shortest(*delta_exploit)));
            t.set("factor", Value::Float(f32_shortest(*factor)));
            t.set("warmup", Value::Int(*warmup as i64));
            t.set("settle", Value::Float(f32_shortest(*settle)));
            t.set("patience", Value::Int(*patience as i64));
            t.set("spike", Value::Float(f32_shortest(*spike)));
        }
        PolicySpec::Variance {
            delta_explore,
            delta_exploit,
            factor,
            warmup,
            settle,
            patience,
            var_ratio,
        } => {
            t.set("kind", Value::Str("variance".into()));
            t.set("delta_explore", Value::Float(f32_shortest(*delta_explore)));
            t.set("delta_exploit", Value::Float(f32_shortest(*delta_exploit)));
            t.set("factor", Value::Float(f32_shortest(*factor)));
            t.set("warmup", Value::Int(*warmup as i64));
            t.set("settle", Value::Float(f32_shortest(*settle)));
            t.set("patience", Value::Int(*patience as i64));
            t.set("var_ratio", Value::Float(f32_shortest(*var_ratio)));
        }
    }
    t
}

/// Parse one `[[policy]]` table.
fn policy_from_table(t: &Table, ctx: &str) -> Result<PolicySpec, String> {
    let policy = match get_str(t, "kind", ctx)? {
        "fixed" => PolicySpec::Fixed {
            delta: get_f64(t, "delta", ctx)? as f32,
        },
        "schedule" => PolicySpec::Schedule {
            starts: get_usize_array(t, "starts", ctx)?,
            deltas: get_f32_array(t, "deltas", ctx)?,
        },
        "adaptive" => PolicySpec::Adaptive {
            delta_explore: get_f64(t, "delta_explore", ctx)? as f32,
            delta_exploit: get_f64(t, "delta_exploit", ctx)? as f32,
            factor: get_f64(t, "factor", ctx)? as f32,
            warmup: get_usize(t, "warmup", ctx)?,
            settle: get_f64(t, "settle", ctx)? as f32,
            patience: get_usize(t, "patience", ctx)?,
            spike: get_f64(t, "spike", ctx)? as f32,
        },
        "variance" => PolicySpec::Variance {
            delta_explore: get_f64(t, "delta_explore", ctx)? as f32,
            delta_exploit: get_f64(t, "delta_exploit", ctx)? as f32,
            factor: get_f64(t, "factor", ctx)? as f32,
            warmup: get_usize(t, "warmup", ctx)?,
            settle: get_f64(t, "settle", ctx)? as f32,
            patience: get_usize(t, "patience", ctx)?,
            var_ratio: get_f64(t, "var_ratio", ctx)? as f32,
        },
        other => {
            return Err(format!(
                "{ctx}: unknown policy kind {other:?} \
                 (expected fixed | schedule | adaptive | variance)"
            ))
        }
    };
    policy.validate().map_err(|e| format!("{ctx}: {e}"))?;
    Ok(policy)
}

impl Scenario {
    /// A minimal steady scenario with the given shape; callers adjust fields from here.
    pub fn base(name: &str, workers: usize, iterations: usize) -> Self {
        Scenario {
            name: name.to_string(),
            description: String::new(),
            seed: 42,
            workers,
            model: ModelKind::ResNetLike,
            batch_size: 16,
            iterations,
            train_samples: 2048,
            test_samples: 512,
            eval_every: (iterations / 10).max(1),
            eval_samples: 256,
            delta: 0.3,
            network: NetworkSpec::paper(),
            heterogeneity: Vec::new(),
            faults: Vec::new(),
            sweep: None,
            rejoin_pull: RejoinPull::WallClock,
            transport: TransportSpec::Memory,
            trace: TraceSpec::default(),
            comm_faults: None,
            ps_faults: None,
            checkpoint: None,
            non_iid_labels_per_worker: None,
        }
    }

    /// Compile the heterogeneity profile + fault schedule to runtime conditions.
    ///
    /// The compiled profile is always *explicit* (an omitted `[heterogeneity]` section
    /// becomes `[1.0; workers]`): a scenario fully specifies its cluster, so no driver
    /// default — such as SSP's paper straggler for profile-less configs — may leak into
    /// a scenario comparison. Every algorithm arm runs on the same cluster.
    pub fn to_conditions(&self) -> ClusterConditions {
        let speeds = if self.heterogeneity.is_empty() {
            vec![1.0; self.workers]
        } else {
            self.heterogeneity.clone()
        };
        let mut c = ClusterConditions::with_speeds(speeds);
        for fault in &self.faults {
            c.faults.push(fault.to_event());
        }
        c
    }

    /// The fully-specified training configuration for one algorithm arm. Every arm gets
    /// identical workload, data, seed, network and conditions — only the algorithm
    /// differs, which is what makes the comparison meaningful.
    pub fn train_config(&self, algorithm: selsync::config::AlgorithmSpec) -> TrainConfig {
        let mut cfg = TrainConfig::small(self.model, self.workers);
        cfg.batch_size = self.batch_size;
        cfg.iterations = self.iterations;
        cfg.eval_every = self.eval_every;
        cfg.eval_samples = self.eval_samples;
        cfg.train_samples = self.train_samples;
        cfg.test_samples = self.test_samples;
        cfg.seed = self.seed;
        cfg.network = self.network.to_model();
        cfg.conditions = self.to_conditions();
        cfg.algorithm = algorithm;
        cfg.rejoin_pull = self.rejoin_pull;
        cfg.comm_faults = self.comm_faults;
        cfg.ps_faults = self.ps_faults.clone();
        cfg.checkpoint = self.checkpoint.clone();
        cfg.non_iid_labels_per_worker = self.non_iid_labels_per_worker;
        cfg
    }

    /// Check internal consistency (worker ids, windows, at least one live worker).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name must not be empty".into());
        }
        if self.workers == 0 {
            return Err("scenario needs at least one worker".into());
        }
        if self.iterations == 0 {
            return Err("scenario needs at least one iteration".into());
        }
        if self.batch_size == 0 || self.train_samples == 0 || self.test_samples == 0 {
            return Err("batch size and dataset sizes must be positive".into());
        }
        if !(self.delta >= 0.0 && self.delta.is_finite()) {
            return Err("delta must be a finite non-negative number".into());
        }
        if self.seed > i64::MAX as u64 {
            return Err("seed must fit a TOML integer (i64)".into());
        }
        // Written so NaN fails the checks (`NaN > 0.0` and `NaN >= 0.0` are false).
        let network_ok = self.network.bandwidth_gbps > 0.0
            && self.network.bandwidth_gbps.is_finite()
            && self.network.latency_ms >= 0.0
            && self.network.latency_ms.is_finite();
        if !network_ok {
            return Err("network needs finite positive bandwidth and non-negative latency".into());
        }
        if let Some(sweep) = &self.sweep {
            sweep.validate()?;
        }
        if let TransportSpec::Socket { addr: Some(addr) } = &self.transport {
            if addr.is_empty() {
                return Err("transport_addr must not be empty when given".into());
            }
        }
        self.trace.validate()?;
        self.to_conditions()
            .validate(self.workers, self.iterations)?;
        if let Some(spec) = &self.comm_faults {
            spec.validate().map_err(|e| format!("[comm_faults]: {e}"))?;
            // The weather's evictions compile into extra no-rejoin crashes; the
            // *effective* membership schedule must still be a valid cluster (e.g.
            // it must never go fully dark before the run ends).
            let cfg = self.train_config(selsync::config::AlgorithmSpec::selsync(self.delta));
            cfg.effective_conditions()
                .validate(self.workers, self.iterations)
                .map_err(|e| format!("[comm_faults]: evictions break the schedule: {e}"))?;
        }
        if let Some(spec) = &self.ps_faults {
            spec.validate().map_err(|e| format!("[ps_faults]: {e}"))?;
        }
        if let Some(ck) = &self.checkpoint {
            ck.validate().map_err(|e| format!("[checkpoint]: {e}"))?;
        }
        if let Some(labels) = self.non_iid_labels_per_worker {
            if labels == 0 {
                return Err("non_iid_labels_per_worker must be at least 1".into());
            }
            if self.model == ModelKind::TransformerLike {
                return Err(
                    "non_iid_labels_per_worker needs a classification workload; the LM task \
                     has no label shards"
                        .into(),
                );
            }
        }
        Ok(())
    }

    /// Serialize to canonical TOML.
    pub fn to_toml_string(&self) -> String {
        let mut doc = Document::new();
        let mut s = Table::new();
        s.set("name", Value::Str(self.name.clone()));
        s.set("description", Value::Str(self.description.clone()));
        s.set("seed", Value::Int(self.seed as i64));
        s.set("workers", Value::Int(self.workers as i64));
        s.set("model", Value::Str(model_name(self.model).to_string()));
        s.set("batch_size", Value::Int(self.batch_size as i64));
        s.set("iterations", Value::Int(self.iterations as i64));
        s.set("train_samples", Value::Int(self.train_samples as i64));
        s.set("test_samples", Value::Int(self.test_samples as i64));
        s.set("eval_every", Value::Int(self.eval_every as i64));
        s.set("eval_samples", Value::Int(self.eval_samples as i64));
        s.set("delta", Value::Float(f32_shortest(self.delta)));
        // Only serialized when set so pre-existing scenario dumps stay
        // byte-identical.
        if let Some(labels) = self.non_iid_labels_per_worker {
            s.set("non_iid_labels_per_worker", Value::Int(labels as i64));
        }
        // Only serialized when non-default so pre-existing scenario dumps stay
        // byte-identical.
        if self.rejoin_pull == RejoinPull::Scheduled {
            s.set("rejoin_pull", Value::Str("scheduled".into()));
        }
        // Only serialized when non-default so pre-existing scenario dumps stay
        // byte-identical.
        if let TransportSpec::Socket { addr } = &self.transport {
            s.set("transport", Value::Str("socket".into()));
            if let Some(addr) = addr {
                s.set("transport_addr", Value::Str(addr.clone()));
            }
        }
        doc.sections.push(("scenario".to_string(), s));

        let mut net = Table::new();
        net.set("bandwidth_gbps", Value::Float(self.network.bandwidth_gbps));
        net.set("latency_ms", Value::Float(self.network.latency_ms));
        doc.sections.push(("network".to_string(), net));

        // Only serialized when non-default (and each key only when non-default), so
        // pre-existing scenario dumps stay byte-identical.
        if self.trace != TraceSpec::default() {
            let mut t = Table::new();
            if self.trace.enabled {
                t.set("enabled", Value::Bool(true));
            }
            if let Some(path) = &self.trace.path {
                t.set("path", Value::Str(path.clone()));
            }
            if self.trace.granularity != TraceGranularity::Full {
                t.set(
                    "granularity",
                    Value::Str(self.trace.granularity.as_str().to_string()),
                );
            }
            doc.sections.push(("trace".to_string(), t));
        }

        // Only serialized when present (omitted = lossless links), so pre-existing
        // scenario dumps stay byte-identical.
        if let Some(spec) = &self.comm_faults {
            let mut cf = Table::new();
            cf.set("seed", Value::Int(spec.seed as i64));
            cf.set("drop", Value::Float(spec.drop));
            cf.set("duplicate", Value::Float(spec.duplicate));
            cf.set("corrupt", Value::Float(spec.corrupt));
            cf.set("delay", Value::Float(spec.delay));
            // Only serialized when non-default so pre-existing dumps stay
            // byte-identical.
            if spec.delay_rounds > 0 {
                cf.set("delay_rounds", Value::Int(spec.delay_rounds as i64));
            }
            cf.set("retry_budget", Value::Int(spec.retry_budget as i64));
            cf.set("timeout_s", Value::Float(spec.timeout_s));
            doc.sections.push(("comm_faults".to_string(), cf));
        }

        // Only serialized when present (omitted = perfectly reliable server), so
        // pre-existing scenario dumps stay byte-identical. Windows serialize as
        // parallel `window_starts` / `window_durations` arrays.
        if let Some(spec) = &self.ps_faults {
            let mut pf = Table::new();
            pf.set("seed", Value::Int(spec.seed as i64));
            pf.set(
                "window_starts",
                Value::Array(
                    spec.windows
                        .iter()
                        .map(|&(start, _)| Value::Int(start as i64))
                        .collect(),
                ),
            );
            pf.set(
                "window_durations",
                Value::Array(
                    spec.windows
                        .iter()
                        .map(|&(_, duration)| Value::Int(duration as i64))
                        .collect(),
                ),
            );
            pf.set("flaky", Value::Float(spec.flaky));
            doc.sections.push(("ps_faults".to_string(), pf));
        }

        // Only serialized when present (omitted = no durable checkpoints). The
        // `halt_after` kill switch is a runtime/CLI knob; it is still round-tripped
        // when set so programmatic dumps stay lossless.
        if let Some(ck) = &self.checkpoint {
            let mut c = Table::new();
            c.set("every", Value::Int(ck.every as i64));
            c.set("dir", Value::Str(ck.dir.clone()));
            if let Some(halt) = ck.halt_after {
                c.set("halt_after", Value::Int(halt as i64));
            }
            if let Some(keep) = ck.keep {
                c.set("keep", Value::Int(keep as i64));
            }
            doc.sections.push(("checkpoint".to_string(), c));
        }

        if let Some(sweep) = &self.sweep {
            let mut sw = Table::new();
            sw.set(
                "deltas",
                Value::Array(
                    sweep
                        .deltas
                        .iter()
                        .map(|&d| Value::Float(f32_shortest(d)))
                        .collect(),
                ),
            );
            sw.set(
                "seeds",
                Value::Array(sweep.seeds.iter().map(|&s| Value::Int(s as i64)).collect()),
            );
            doc.sections.push(("sweep".to_string(), sw));
        }

        if !self.heterogeneity.is_empty() {
            let mut h = Table::new();
            h.set(
                "speeds",
                Value::Array(
                    self.heterogeneity
                        .iter()
                        .map(|&s| Value::Float(s))
                        .collect(),
                ),
            );
            doc.sections.push(("heterogeneity".to_string(), h));
        }

        for fault in &self.faults {
            let mut t = Table::new();
            match *fault {
                FaultSpec::Slowdown {
                    worker,
                    start,
                    duration,
                    factor,
                } => {
                    t.set("kind", Value::Str("slowdown".into()));
                    t.set("worker", Value::Int(worker as i64));
                    t.set("start", Value::Int(start as i64));
                    t.set("duration", Value::Int(duration as i64));
                    t.set("factor", Value::Float(factor));
                }
                FaultSpec::Crash {
                    worker,
                    start,
                    rejoin,
                } => {
                    t.set("kind", Value::Str("crash".into()));
                    t.set("worker", Value::Int(worker as i64));
                    t.set("start", Value::Int(start as i64));
                    if let Some(r) = rejoin {
                        t.set("rejoin", Value::Int(r as i64));
                    }
                }
                FaultSpec::Bandwidth {
                    start,
                    duration,
                    factor,
                } => {
                    t.set("kind", Value::Str("bandwidth".into()));
                    t.set("start", Value::Int(start as i64));
                    t.set("duration", Value::Int(duration as i64));
                    t.set("factor", Value::Float(factor));
                }
                FaultSpec::Latency {
                    start,
                    duration,
                    extra_ms,
                } => {
                    t.set("kind", Value::Str("latency".into()));
                    t.set("start", Value::Int(start as i64));
                    t.set("duration", Value::Int(duration as i64));
                    t.set("extra_ms", Value::Float(extra_ms));
                }
            }
            doc.table_arrays.push(("fault".to_string(), t));
        }

        if let Some(sweep) = &self.sweep {
            for policy in &sweep.policies {
                doc.table_arrays
                    .push(("policy".to_string(), policy_to_table(policy)));
            }
        }
        toml::serialize(&doc)
    }

    /// Parse a scenario from TOML text.
    pub fn from_toml_str(text: &str) -> Result<Self, String> {
        let doc = toml::parse(text).map_err(|e| e.to_string())?;
        let s = doc
            .section("scenario")
            .ok_or("missing [scenario] section")?;
        let ctx = "[scenario]";
        let name = get_str(s, "name", ctx)?.to_string();
        let description = s
            .get("description")
            .and_then(|v| v.as_str())
            .unwrap_or_default()
            .to_string();
        let seed = get_usize(s, "seed", ctx)? as u64;
        let workers = get_usize(s, "workers", ctx)?;
        let model = model_from_name(get_str(s, "model", ctx)?)?;
        let batch_size = get_usize(s, "batch_size", ctx)?;
        let iterations = get_usize(s, "iterations", ctx)?;
        let train_samples = get_usize(s, "train_samples", ctx)?;
        let test_samples = get_usize(s, "test_samples", ctx)?;
        let eval_every = get_usize(s, "eval_every", ctx)?;
        let eval_samples = get_usize(s, "eval_samples", ctx)?;
        let delta = get_f64(s, "delta", ctx)? as f32;
        let non_iid_labels_per_worker = match s.get("non_iid_labels_per_worker") {
            None => None,
            Some(v) => Some(
                v.as_int()
                    .and_then(|i| usize::try_from(i).ok())
                    .ok_or_else(|| {
                        format!("{ctx}: non_iid_labels_per_worker must be a non-negative integer")
                    })?,
            ),
        };
        let rejoin_pull = match s.get("rejoin_pull") {
            None => RejoinPull::WallClock,
            Some(v) => match v.as_str() {
                Some("wall-clock") => RejoinPull::WallClock,
                Some("scheduled") => RejoinPull::Scheduled,
                Some(other) => {
                    return Err(format!(
                        "{ctx}: unknown rejoin_pull {other:?} \
                         (expected wall-clock | scheduled)"
                    ))
                }
                None => return Err(format!("{ctx}: rejoin_pull must be a string")),
            },
        };
        let transport_addr = match s.get("transport_addr") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| format!("{ctx}: transport_addr must be a string"))?
                    .to_string(),
            ),
        };
        let transport = match s.get("transport") {
            None => {
                if transport_addr.is_some() {
                    return Err(format!(
                        "{ctx}: transport_addr requires transport = \"socket\""
                    ));
                }
                TransportSpec::Memory
            }
            Some(v) => match v.as_str() {
                Some("memory") => {
                    if transport_addr.is_some() {
                        return Err(format!(
                            "{ctx}: transport_addr requires transport = \"socket\""
                        ));
                    }
                    TransportSpec::Memory
                }
                Some("socket") => TransportSpec::Socket {
                    addr: transport_addr,
                },
                Some(other) => {
                    return Err(format!(
                        "{ctx}: unknown transport {other:?} (expected memory | socket)"
                    ))
                }
                None => return Err(format!("{ctx}: transport must be a string")),
            },
        };

        let trace = match doc.section("trace") {
            Some(t) => {
                let ctx = "[trace]";
                let enabled = match t.get("enabled") {
                    None => false,
                    Some(v) => v
                        .as_bool()
                        .ok_or_else(|| format!("{ctx}: enabled must be a boolean"))?,
                };
                let path = match t.get("path") {
                    None => None,
                    Some(v) => Some(
                        v.as_str()
                            .ok_or_else(|| format!("{ctx}: path must be a string"))?
                            .to_string(),
                    ),
                };
                let granularity = match t.get("granularity") {
                    None => TraceGranularity::Full,
                    Some(v) => {
                        let text = v
                            .as_str()
                            .ok_or_else(|| format!("{ctx}: granularity must be a string"))?;
                        TraceGranularity::parse(text)
                            .map_err(|e| format!("{ctx}: granularity: {e}"))?
                    }
                };
                TraceSpec {
                    enabled,
                    path,
                    granularity,
                }
            }
            None => TraceSpec::default(),
        };

        let comm_faults = match doc.section("comm_faults") {
            Some(cf) => {
                let ctx = "[comm_faults]";
                let rate = |key: &str| -> Result<f64, String> {
                    match cf.get(key) {
                        None => Ok(0.0),
                        Some(v) => v
                            .as_float()
                            .ok_or_else(|| format!("{ctx}: {key} must be a number")),
                    }
                };
                Some(CommFaultSpec {
                    // The weather seed defaults to the scenario seed; give it its
                    // own value to replay one run under different weather.
                    seed: match cf.get("seed") {
                        None => seed,
                        Some(_) => get_usize(cf, "seed", ctx)? as u64,
                    },
                    drop: rate("drop")?,
                    duplicate: rate("duplicate")?,
                    corrupt: rate("corrupt")?,
                    delay: rate("delay")?,
                    delay_rounds: match cf.get("delay_rounds") {
                        None => 0,
                        Some(_) => get_usize(cf, "delay_rounds", ctx)? as u64,
                    },
                    retry_budget: match cf.get("retry_budget") {
                        None => 3,
                        Some(_) => u32::try_from(get_usize(cf, "retry_budget", ctx)?)
                            .map_err(|_| format!("{ctx}: retry_budget is too large"))?,
                    },
                    timeout_s: match cf.get("timeout_s") {
                        None => 5.0e-3,
                        Some(_) => get_f64(cf, "timeout_s", ctx)?,
                    },
                })
            }
            None => None,
        };

        let ps_faults = match doc.section("ps_faults") {
            Some(pf) => {
                let ctx = "[ps_faults]";
                let starts = match pf.get("window_starts") {
                    Some(_) => get_usize_array(pf, "window_starts", ctx)?,
                    None => Vec::new(),
                };
                let durations = match pf.get("window_durations") {
                    Some(_) => get_usize_array(pf, "window_durations", ctx)?,
                    None => Vec::new(),
                };
                if starts.len() != durations.len() {
                    return Err(format!(
                        "{ctx}: window_starts ({} entries) and window_durations ({} entries) \
                         must be parallel arrays of the same length",
                        starts.len(),
                        durations.len()
                    ));
                }
                Some(PsFaultSpec {
                    // The availability seed defaults to the scenario seed; give it
                    // its own value to replay one run under different server weather.
                    seed: match pf.get("seed") {
                        None => seed,
                        Some(_) => get_usize(pf, "seed", ctx)? as u64,
                    },
                    windows: starts.into_iter().zip(durations).collect(),
                    flaky: match pf.get("flaky") {
                        None => 0.0,
                        Some(_) => get_f64(pf, "flaky", ctx)?,
                    },
                })
            }
            None => None,
        };

        let checkpoint = match doc.section("checkpoint") {
            Some(c) => {
                let ctx = "[checkpoint]";
                Some(CheckpointSpec {
                    every: get_usize(c, "every", ctx)?,
                    dir: get_str(c, "dir", ctx)?.to_string(),
                    halt_after: match c.get("halt_after") {
                        None => None,
                        Some(_) => Some(get_usize(c, "halt_after", ctx)?),
                    },
                    keep: match c.get("keep") {
                        None => None,
                        Some(_) => Some(get_usize(c, "keep", ctx)?),
                    },
                })
            }
            None => None,
        };

        let network = match doc.section("network") {
            Some(n) => NetworkSpec {
                bandwidth_gbps: get_f64(n, "bandwidth_gbps", "[network]")?,
                latency_ms: get_f64(n, "latency_ms", "[network]")?,
            },
            None => NetworkSpec::paper(),
        };

        let heterogeneity = match doc.section("heterogeneity") {
            Some(h) => {
                let arr = h
                    .get("speeds")
                    .and_then(|v| v.as_array())
                    .ok_or("[heterogeneity]: speeds must be an array")?;
                arr.iter()
                    .map(|v| {
                        v.as_float()
                            .ok_or("[heterogeneity]: speeds must be numbers".into())
                    })
                    .collect::<Result<Vec<f64>, String>>()?
            }
            None => Vec::new(),
        };

        let mut faults = Vec::new();
        for (i, t) in doc.tables_named("fault").into_iter().enumerate() {
            let ctx = format!("[[fault]] #{i}");
            let fault = match get_str(t, "kind", &ctx)? {
                "slowdown" => FaultSpec::Slowdown {
                    worker: get_usize(t, "worker", &ctx)?,
                    start: get_usize(t, "start", &ctx)?,
                    duration: get_usize(t, "duration", &ctx)?,
                    factor: get_f64(t, "factor", &ctx)?,
                },
                "crash" => FaultSpec::Crash {
                    worker: get_usize(t, "worker", &ctx)?,
                    start: get_usize(t, "start", &ctx)?,
                    rejoin: match t.get("rejoin") {
                        Some(v) => Some(
                            v.as_int()
                                .and_then(|i| usize::try_from(i).ok())
                                .ok_or(format!("{ctx}: rejoin must be a non-negative integer"))?,
                        ),
                        None => None,
                    },
                },
                "bandwidth" => FaultSpec::Bandwidth {
                    start: get_usize(t, "start", &ctx)?,
                    duration: get_usize(t, "duration", &ctx)?,
                    factor: get_f64(t, "factor", &ctx)?,
                },
                "latency" => FaultSpec::Latency {
                    start: get_usize(t, "start", &ctx)?,
                    duration: get_usize(t, "duration", &ctx)?,
                    extra_ms: get_f64(t, "extra_ms", &ctx)?,
                },
                other => {
                    return Err(format!(
                        "{ctx}: unknown fault kind {other:?} \
                         (expected slowdown | crash | bandwidth | latency)"
                    ))
                }
            };
            faults.push(fault);
        }

        let mut policies = Vec::new();
        for (i, t) in doc.tables_named("policy").into_iter().enumerate() {
            policies.push(policy_from_table(t, &format!("[[policy]] #{i}"))?);
        }
        let sweep = match doc.section("sweep") {
            Some(sw) => {
                let ctx = "[sweep]";
                let deltas = match sw.get("deltas") {
                    Some(_) => get_f32_array(sw, "deltas", ctx)?,
                    None => Vec::new(),
                };
                let sweep_seeds = match sw.get("seeds") {
                    Some(_) => get_usize_array(sw, "seeds", ctx)?
                        .into_iter()
                        .map(|s| s as u64)
                        .collect(),
                    None => vec![seed],
                };
                Some(SweepSpec {
                    deltas,
                    seeds: sweep_seeds,
                    policies,
                })
            }
            None if !policies.is_empty() => Some(SweepSpec {
                deltas: Vec::new(),
                seeds: vec![seed],
                policies,
            }),
            None => None,
        };

        let scenario = Scenario {
            name,
            description,
            seed,
            workers,
            model,
            batch_size,
            iterations,
            train_samples,
            test_samples,
            eval_every,
            eval_samples,
            delta,
            network,
            heterogeneity,
            faults,
            sweep,
            rejoin_pull,
            transport,
            trace,
            comm_faults,
            ps_faults,
            checkpoint,
            non_iid_labels_per_worker,
        };
        scenario.validate()?;
        Ok(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        let mut s = Scenario::base("unit-test", 4, 100);
        s.description = "schema unit test".into();
        s.heterogeneity = vec![1.0, 1.1, 1.0, 1.4];
        s.faults = vec![
            FaultSpec::Slowdown {
                worker: 3,
                start: 20,
                duration: 30,
                factor: 3.0,
            },
            FaultSpec::Crash {
                worker: 1,
                start: 40,
                rejoin: Some(60),
            },
            FaultSpec::Crash {
                worker: 2,
                start: 90,
                rejoin: None,
            },
            FaultSpec::Bandwidth {
                start: 10,
                duration: 25,
                factor: 0.25,
            },
            FaultSpec::Latency {
                start: 10,
                duration: 25,
                extra_ms: 15.0,
            },
        ];
        s.sweep = Some(SweepSpec {
            deltas: vec![0.0, 0.1, 0.3],
            seeds: vec![42, 43],
            policies: vec![
                PolicySpec::adaptive_default(),
                PolicySpec::Schedule {
                    starts: vec![0, 50],
                    deltas: vec![0.0, 0.5],
                },
                PolicySpec::Fixed { delta: 0.25 },
                PolicySpec::variance_default(),
            ],
        });
        s.ps_faults = Some(PsFaultSpec {
            seed: 7,
            windows: vec![(15, 5), (70, 3)],
            flaky: 0.02,
        });
        s.checkpoint = Some(CheckpointSpec {
            every: 25,
            dir: "target/ckpt/unit-test".into(),
            halt_after: None,
            keep: None,
        });
        s
    }

    #[test]
    fn toml_round_trip_is_identity() {
        let s = sample();
        let text = s.to_toml_string();
        let parsed = Scenario::from_toml_str(&text).unwrap();
        assert_eq!(s, parsed);
        // Canonical serialization is a fixed point.
        assert_eq!(text, parsed.to_toml_string());
    }

    #[test]
    fn non_iid_key_round_trips_and_validates() {
        let mut s = Scenario::base("noniid", 3, 10);
        s.non_iid_labels_per_worker = Some(4);
        let text = s.to_toml_string();
        assert!(text.contains("non_iid_labels_per_worker = 4"));
        let parsed = Scenario::from_toml_str(&text).unwrap();
        assert_eq!(s, parsed);
        assert_eq!(
            s.train_config(selsync::config::AlgorithmSpec::selsync(s.delta))
                .non_iid_labels_per_worker,
            Some(4)
        );

        s.non_iid_labels_per_worker = Some(0);
        assert!(s.validate().is_err(), "zero labels per worker");
        s.non_iid_labels_per_worker = Some(2);
        s.model = ModelKind::TransformerLike;
        assert!(s.validate().is_err(), "the LM task has no label shards");
    }

    #[test]
    fn conditions_compilation_matches_schema() {
        let s = sample();
        let c = s.to_conditions();
        assert_eq!(c.base_speed, vec![1.0, 1.1, 1.0, 1.4]);
        assert_eq!(c.faults.len(), 5);
        assert!(
            (c.compute_multiplier(3, 25) - 4.2).abs() < 1e-12,
            "1.4 base x 3.0 slowdown"
        );
        assert!(!c.is_present(1, 50));
        assert!(c.is_present(1, 60));
        assert!(!c.is_present(2, 95));
        let base = NetworkModel::paper_5gbps();
        let net = c.network_at(12, &base);
        assert_eq!(net.bandwidth_bps, base.bandwidth_bps * 0.25);
        assert!((net.latency_s - (base.latency_s + 0.015)).abs() < 1e-12);
    }

    #[test]
    fn train_config_carries_the_whole_scenario() {
        let s = sample();
        let cfg = s.train_config(selsync::config::AlgorithmSpec::selsync(s.delta));
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.iterations, 100);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.conditions, s.to_conditions());
    }

    #[test]
    fn validation_rejects_broken_scenarios() {
        let mut s = sample();
        s.faults.push(FaultSpec::Slowdown {
            worker: 99,
            start: 0,
            duration: 1,
            factor: 2.0,
        });
        assert!(s.validate().is_err());

        let mut s2 = sample();
        s2.workers = 0;
        assert!(s2.validate().is_err());

        let mut s3 = sample();
        s3.delta = f32::NAN;
        assert!(s3.validate().is_err());

        let mut s4 = sample();
        s4.network.bandwidth_gbps = f64::NAN;
        assert!(s4.validate().is_err());
        let mut s5 = sample();
        s5.network.latency_ms = f64::INFINITY;
        assert!(s5.validate().is_err());
    }

    #[test]
    fn sweep_block_round_trips_and_validates() {
        let s = sample();
        let text = s.to_toml_string();
        assert!(text.contains("[sweep]"), "{text}");
        assert!(text.contains("[[policy]]"), "{text}");
        let parsed = Scenario::from_toml_str(&text).unwrap();
        assert_eq!(s.sweep, parsed.sweep);

        // Policies without a [sweep] section still form a sweep over the scenario seed.
        let mut no_section = s.clone();
        no_section.sweep = Some(SweepSpec {
            deltas: Vec::new(),
            seeds: vec![42],
            policies: vec![PolicySpec::adaptive_default()],
        });
        let text = no_section.to_toml_string();
        let parsed = Scenario::from_toml_str(&text).unwrap();
        assert_eq!(no_section.sweep, parsed.sweep);

        // Broken sweeps are rejected.
        let mut bad = s.clone();
        bad.sweep = Some(SweepSpec {
            deltas: vec![f32::NAN],
            seeds: vec![42],
            policies: Vec::new(),
        });
        assert!(bad.validate().is_err());
        let mut empty = s.clone();
        empty.sweep = Some(SweepSpec {
            deltas: Vec::new(),
            seeds: vec![42],
            policies: Vec::new(),
        });
        assert!(empty.validate().is_err());
        assert!(Scenario::from_toml_str(
            &s.to_toml_string()
                .replace("kind = \"adaptive\"", "kind = \"oracle\"")
        )
        .is_err());
    }

    #[test]
    fn rejoin_pull_round_trips_and_defaults_to_wall_clock() {
        // Default: omitted from the TOML, parses back to wall-clock.
        let s = sample();
        assert_eq!(s.rejoin_pull, RejoinPull::WallClock);
        let text = s.to_toml_string();
        assert!(!text.contains("rejoin_pull"), "{text}");

        // Scheduled: serialized explicitly, round-trips, reaches the train config.
        let mut scheduled = sample();
        scheduled.rejoin_pull = RejoinPull::Scheduled;
        let text = scheduled.to_toml_string();
        assert!(text.contains("rejoin_pull = \"scheduled\""), "{text}");
        let parsed = Scenario::from_toml_str(&text).unwrap();
        assert_eq!(parsed.rejoin_pull, RejoinPull::Scheduled);
        assert_eq!(scheduled, parsed);
        let cfg = parsed.train_config(selsync::config::AlgorithmSpec::selsync(0.1));
        assert_eq!(cfg.rejoin_pull, RejoinPull::Scheduled);

        // An explicit wall-clock value parses too; unknown values are rejected.
        let explicit = text.replace(
            "rejoin_pull = \"scheduled\"",
            "rejoin_pull = \"wall-clock\"",
        );
        assert_eq!(
            Scenario::from_toml_str(&explicit).unwrap().rejoin_pull,
            RejoinPull::WallClock
        );
        let bad = text.replace("rejoin_pull = \"scheduled\"", "rejoin_pull = \"psychic\"");
        assert!(Scenario::from_toml_str(&bad)
            .unwrap_err()
            .contains("rejoin_pull"));
    }

    #[test]
    fn trace_block_round_trips_and_defaults_to_disabled() {
        // Default: omitted from the TOML, parses back disabled.
        let s = sample();
        assert_eq!(s.trace, TraceSpec::default());
        let text = s.to_toml_string();
        assert!(!text.contains("[trace]"), "{text}");

        // Enabled with a path and coarse granularity: serialized, round-trips.
        let mut traced = sample();
        traced.trace = TraceSpec {
            enabled: true,
            path: Some("out/run.trace.jsonl".into()),
            granularity: TraceGranularity::Rounds,
        };
        let text = traced.to_toml_string();
        assert!(text.contains("[trace]"), "{text}");
        assert!(text.contains("enabled = true"), "{text}");
        assert!(text.contains("granularity = \"rounds\""), "{text}");
        let parsed = Scenario::from_toml_str(&text).unwrap();
        assert_eq!(traced, parsed);
        assert_eq!(text, parsed.to_toml_string());

        // Default-valued keys are elided: enabled-only blocks carry one key.
        let mut minimal = sample();
        minimal.trace.enabled = true;
        let text = minimal.to_toml_string();
        assert!(text.contains("[trace]\nenabled = true\n"), "{text}");
        assert_eq!(Scenario::from_toml_str(&text).unwrap(), minimal);

        // Unknown granularities and empty paths are rejected.
        let bad = text.replace("enabled = true", "granularity = \"epochs\"");
        assert!(Scenario::from_toml_str(&bad)
            .unwrap_err()
            .contains("granularity"));
        let mut empty_path = sample();
        empty_path.trace.path = Some(String::new());
        assert!(empty_path.validate().is_err());
    }

    #[test]
    fn comm_faults_block_round_trips_and_defaults_to_lossless() {
        // Default: omitted from the TOML, parses back to lossless links.
        let s = sample();
        assert!(s.comm_faults.is_none());
        let text = s.to_toml_string();
        assert!(!text.contains("[comm_faults]"), "{text}");

        // A full block round-trips and reaches the train config.
        let mut faulty = sample();
        faulty.comm_faults = Some(CommFaultSpec {
            seed: 7,
            drop: 0.05,
            duplicate: 0.02,
            corrupt: 0.01,
            delay: 0.04,
            delay_rounds: 0,
            retry_budget: 5,
            timeout_s: 5.0e-3,
        });
        let text = faulty.to_toml_string();
        assert!(text.contains("[comm_faults]"), "{text}");
        let parsed = Scenario::from_toml_str(&text).unwrap();
        assert_eq!(faulty, parsed);
        assert_eq!(text, parsed.to_toml_string());
        let cfg = parsed.train_config(selsync::config::AlgorithmSpec::selsync(0.1));
        assert_eq!(cfg.comm_faults, faulty.comm_faults);

        // Omitted keys default: rates 0, budget 3, timeout 5 ms, weather seed =
        // scenario seed.
        let base_text = Scenario::base("cf", 3, 50).to_toml_string();
        let minimal = format!("{base_text}[comm_faults]\ndrop = 0.01\n");
        let spec = Scenario::from_toml_str(&minimal)
            .unwrap()
            .comm_faults
            .unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.drop, 0.01);
        assert_eq!(spec.duplicate, 0.0);
        assert_eq!(spec.retry_budget, 3);
        assert_eq!(spec.timeout_s, 5.0e-3);

        // Broken rates are rejected with the section name in the error.
        let bad = format!("{base_text}[comm_faults]\ndrop = 1.5\n");
        assert!(Scenario::from_toml_str(&bad)
            .unwrap_err()
            .contains("comm_faults"));
    }

    #[test]
    fn weather_that_blacks_out_the_cluster_is_rejected() {
        // A 95% per-leg failure rate with a single attempt evicts every worker
        // almost immediately; the compiled membership schedule then has fully dark
        // rounds, which validation must refuse just like an all-crash schedule.
        let mut dark = Scenario::base("dark", 3, 50);
        dark.comm_faults = Some(CommFaultSpec {
            seed: 1,
            drop: 0.9,
            duplicate: 0.0,
            corrupt: 0.05,
            delay: 0.0,
            delay_rounds: 0,
            retry_budget: 1,
            timeout_s: 1e-3,
        });
        let err = dark.validate().unwrap_err();
        assert!(err.contains("comm_faults"), "{err}");
    }

    #[test]
    fn default_grid_is_valid() {
        let grid = SweepSpec::default_grid(42);
        grid.validate().unwrap();
        assert!(grid.arm_count() >= 3);
        assert!(grid.deltas.contains(&0.0), "needs the BSP-equivalent arm");
        assert_eq!(grid.seeds.len(), 3);
    }

    #[test]
    fn model_names_round_trip() {
        for kind in ModelKind::all() {
            assert_eq!(model_from_name(model_name(kind)).unwrap(), kind);
        }
        assert!(model_from_name("gpt5").is_err());
    }

    #[test]
    fn ps_faults_block_round_trips_and_defaults_to_reliable() {
        // Default: a base scenario has no [ps_faults] section.
        let base_text = Scenario::base("ps", 3, 50).to_toml_string();
        assert!(!base_text.contains("[ps_faults]"), "{base_text}");

        // The sample carries one: serialized as parallel arrays, round-trips, and
        // reaches the train config.
        let s = sample();
        let text = s.to_toml_string();
        assert!(text.contains("[ps_faults]"), "{text}");
        assert!(text.contains("window_starts = [15, 70]"), "{text}");
        assert!(text.contains("window_durations = [5, 3]"), "{text}");
        let parsed = Scenario::from_toml_str(&text).unwrap();
        assert_eq!(s.ps_faults, parsed.ps_faults);
        assert_eq!(text, parsed.to_toml_string());
        let cfg = parsed.train_config(selsync::config::AlgorithmSpec::selsync(0.1));
        assert_eq!(cfg.ps_faults, s.ps_faults);

        // Omitted keys default: availability seed = scenario seed, no windows,
        // flaky 0.
        let minimal = format!("{base_text}[ps_faults]\nflaky = 0.1\n");
        let spec = Scenario::from_toml_str(&minimal)
            .unwrap()
            .ps_faults
            .unwrap();
        assert_eq!(spec.seed, 42);
        assert!(spec.windows.is_empty());
        assert_eq!(spec.flaky, 0.1);

        // Mismatched parallel arrays and broken rates are rejected with the
        // section name in the error.
        let ragged = format!("{base_text}[ps_faults]\nwindow_starts = [5]\n");
        assert!(Scenario::from_toml_str(&ragged)
            .unwrap_err()
            .contains("ps_faults"));
        let bad_rate = format!("{base_text}[ps_faults]\nflaky = 1.5\n");
        assert!(Scenario::from_toml_str(&bad_rate)
            .unwrap_err()
            .contains("ps_faults"));
    }

    #[test]
    fn checkpoint_block_round_trips_and_defaults_to_disabled() {
        // Default: a base scenario writes no checkpoints.
        let base_text = Scenario::base("ck", 3, 50).to_toml_string();
        assert!(!base_text.contains("[checkpoint]"), "{base_text}");

        // The sample's block round-trips and reaches the train config.
        let s = sample();
        let text = s.to_toml_string();
        assert!(text.contains("[checkpoint]"), "{text}");
        assert!(text.contains("every = 25"), "{text}");
        let parsed = Scenario::from_toml_str(&text).unwrap();
        assert_eq!(s.checkpoint, parsed.checkpoint);
        assert_eq!(text, parsed.to_toml_string());
        let cfg = parsed.train_config(selsync::config::AlgorithmSpec::selsync(0.1));
        assert_eq!(cfg.checkpoint, s.checkpoint);

        // halt_after (a runtime kill switch) still round-trips when set.
        let mut halting = sample();
        halting.checkpoint.as_mut().unwrap().halt_after = Some(40);
        let text = halting.to_toml_string();
        assert!(text.contains("halt_after = 40"), "{text}");
        assert_eq!(Scenario::from_toml_str(&text).unwrap(), halting);

        // A zero cadence or empty directory is rejected.
        let bad = text.replace("every = 25", "every = 0");
        assert!(Scenario::from_toml_str(&bad)
            .unwrap_err()
            .contains("checkpoint"));
        let mut no_dir = sample();
        no_dir.checkpoint.as_mut().unwrap().dir = String::new();
        assert!(no_dir.validate().is_err());
    }

    #[test]
    fn transport_key_round_trips_and_defaults_to_memory() {
        // Default: omitted from the TOML, parses back to memory.
        let s = sample();
        assert_eq!(s.transport, TransportSpec::Memory);
        let text = s.to_toml_string();
        assert!(!text.contains("transport"), "{text}");

        // UDS socket: serialized explicitly, round-trips.
        let mut uds = sample();
        uds.transport = TransportSpec::Socket { addr: None };
        let text = uds.to_toml_string();
        assert!(text.contains("transport = \"socket\""), "{text}");
        assert!(!text.contains("transport_addr"), "{text}");
        let parsed = Scenario::from_toml_str(&text).unwrap();
        assert_eq!(uds, parsed);
        assert_eq!(text, parsed.to_toml_string());

        // TCP socket: the address rides along.
        let mut tcp = sample();
        tcp.transport = TransportSpec::Socket {
            addr: Some("127.0.0.1:9044".into()),
        };
        let text = tcp.to_toml_string();
        assert!(
            text.contains("transport_addr = \"127.0.0.1:9044\""),
            "{text}"
        );
        let parsed = Scenario::from_toml_str(&text).unwrap();
        assert_eq!(tcp, parsed);

        // An explicit memory value parses; unknown transports, addresses without
        // the socket transport, and empty addresses are rejected.
        let explicit = text
            .replace("transport = \"socket\"\n", "transport = \"memory\"\n")
            .replace("transport_addr = \"127.0.0.1:9044\"\n", "");
        assert_eq!(
            Scenario::from_toml_str(&explicit).unwrap().transport,
            TransportSpec::Memory
        );
        let bad = text.replace("transport = \"socket\"", "transport = \"pigeon\"");
        assert!(Scenario::from_toml_str(&bad)
            .unwrap_err()
            .contains("transport"));
        let orphan = text.replace("transport = \"socket\"\n", "");
        assert!(Scenario::from_toml_str(&orphan)
            .unwrap_err()
            .contains("transport_addr"));
        let mut empty = sample();
        empty.transport = TransportSpec::Socket {
            addr: Some(String::new()),
        };
        assert!(empty.validate().is_err());
    }

    #[test]
    fn delay_rounds_key_round_trips_and_defaults_to_zero() {
        // Default: a zero delay_rounds is elided from the dump.
        let mut faulty = sample();
        faulty.comm_faults = Some(CommFaultSpec::lossless(7));
        let text = faulty.to_toml_string();
        assert!(!text.contains("delay_rounds"), "{text}");

        // Non-zero: serialized, round-trips, reaches the train config.
        let mut spec = CommFaultSpec::lossless(7);
        spec.delay = 0.1;
        spec.delay_rounds = 96;
        faulty.comm_faults = Some(spec);
        let text = faulty.to_toml_string();
        assert!(text.contains("delay_rounds = 96"), "{text}");
        let parsed = Scenario::from_toml_str(&text).unwrap();
        assert_eq!(faulty, parsed);
        assert_eq!(text, parsed.to_toml_string());
        assert_eq!(
            parsed.comm_faults.unwrap().delay_rounds,
            96,
            "delay_rounds survives the round trip"
        );
    }

    #[test]
    fn checkpoint_keep_round_trips_and_rejects_zero() {
        // keep is elided when unset (the sample has none) and round-trips when set.
        let s = sample();
        assert!(
            !s.to_toml_string().contains("keep"),
            "{}",
            s.to_toml_string()
        );
        let mut rotating = sample();
        rotating.checkpoint.as_mut().unwrap().keep = Some(3);
        let text = rotating.to_toml_string();
        assert!(text.contains("keep = 3"), "{text}");
        let parsed = Scenario::from_toml_str(&text).unwrap();
        assert_eq!(rotating, parsed);
        assert_eq!(text, parsed.to_toml_string());

        // keep = 0 would retain nothing and is rejected at validation time.
        let bad = text.replace("keep = 3", "keep = 0");
        assert!(Scenario::from_toml_str(&bad).unwrap_err().contains("keep"));
    }

    #[test]
    fn variance_policy_round_trips() {
        let s = sample();
        let text = s.to_toml_string();
        assert!(text.contains("kind = \"variance\""), "{text}");
        assert!(text.contains("var_ratio"), "{text}");
        let parsed = Scenario::from_toml_str(&text).unwrap();
        assert_eq!(s.sweep, parsed.sweep);
        assert!(parsed
            .sweep
            .unwrap()
            .policies
            .iter()
            .any(|p| matches!(p, PolicySpec::Variance { .. })));
    }

    #[test]
    fn missing_sections_are_reported() {
        assert!(Scenario::from_toml_str("x = 1")
            .unwrap_err()
            .contains("[scenario]"));
        let text = sample().to_toml_string().replace("model = \"resnet\"", "");
        assert!(Scenario::from_toml_str(&text)
            .unwrap_err()
            .contains("model"));
    }
}

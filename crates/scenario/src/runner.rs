//! The scenario comparison runner.
//!
//! Runs BSP, SSP, FedAvg, local SGD and SelSync over one scenario with *identical*
//! accounting — same workload, same seed, same conditions, same cost models — and
//! renders a deterministic comparison report. Same scenario + same seed ⇒ byte-identical
//! report text, which is what turns recorded seeds into regression tests.

use crate::injector::FaultInjector;
use crate::schema::Scenario;
use selsync::algorithms;
use selsync::config::AlgorithmSpec;
use selsync::report::RunReport;
use selsync_metrics::table::{fmt_f, Table};
use selsync_tracelog::TraceSink;

/// The algorithm arms every scenario comparison runs, in canonical order.
pub fn algorithm_arms(delta: f32) -> Vec<AlgorithmSpec> {
    vec![
        AlgorithmSpec::Bsp,
        AlgorithmSpec::Ssp { staleness: 24 },
        AlgorithmSpec::FedAvg { c: 1.0, e: 0.25 },
        AlgorithmSpec::LocalSgd,
        AlgorithmSpec::selsync(delta),
    ]
}

/// All per-algorithm reports for one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario description.
    pub description: String,
    /// The seed the run used.
    pub seed: u64,
    /// Deterministic fault-timeline summary.
    pub timeline: String,
    /// One report per arm, in [`algorithm_arms`] order.
    pub runs: Vec<RunReport>,
    /// The encoded event log of the SelSync arm, when the scenario's `[trace]` block
    /// enables capture (`None` otherwise). The other arms are never traced — the
    /// event taxonomy describes selective synchronization.
    pub trace: Option<String>,
}

/// Run every algorithm arm over `scenario` and collect the reports.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, String> {
    let injector = FaultInjector::compile(scenario)?;
    let mut runs = Vec::new();
    let mut trace = None;
    for algo in algorithm_arms(scenario.delta) {
        let mut cfg = scenario.train_config(algo);
        let traced =
            scenario.trace.enabled && matches!(cfg.algorithm, AlgorithmSpec::SelSync { .. });
        if traced {
            cfg.trace = TraceSink::capture(scenario.trace.granularity);
        }
        runs.push(algorithms::run(&cfg));
        if traced {
            trace = Some(cfg.trace.take_log().encode());
        }
    }
    let mut timeline = injector.timeline();
    if let Some(weather) = &scenario.comm_faults {
        timeline.push('\n');
        timeline.push_str(&weather.describe());
    }
    if let Some(outages) = &scenario.ps_faults {
        timeline.push('\n');
        timeline.push_str(&outages.describe());
    }
    Ok(ScenarioReport {
        scenario: scenario.name.clone(),
        description: scenario.description.clone(),
        seed: scenario.seed,
        timeline,
        runs,
        trace,
    })
}

impl ScenarioReport {
    /// The BSP arm (always the first).
    pub fn bsp(&self) -> &RunReport {
        &self.runs[0]
    }

    /// The SelSync arm (always the last).
    pub fn selsync(&self) -> &RunReport {
        self.runs.last().expect("runs are never empty")
    }

    /// The first run whose algorithm label starts with `prefix`.
    pub fn run_named(&self, prefix: &str) -> Option<&RunReport> {
        self.runs.iter().find(|r| r.algorithm.starts_with(prefix))
    }

    /// SelSync's simulated-time speedup over BSP for the same iteration count.
    pub fn selsync_raw_speedup(&self) -> f64 {
        self.selsync().raw_time_speedup(self.bsp())
    }

    /// SelSync's speedup to reach BSP's final metric (`None` if it never does).
    pub fn selsync_target_speedup(&self) -> Option<f64> {
        self.selsync().speedup_to_baseline_target(self.bsp())
    }

    /// Render the full report as deterministic text (fixed-precision numbers, stable
    /// ordering; no clocks, no paths).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# scenario: {} (seed {})\n",
            self.scenario, self.seed
        ));
        if !self.description.is_empty() {
            out.push_str(&format!("{}\n", self.description));
        }
        out.push_str("\n## cluster timeline\n");
        out.push_str(&self.timeline);
        out.push('\n');

        let higher = self.bsp().higher_is_better;
        out.push_str(&format!(
            "\n## per-algorithm results ({} is better)\n\n",
            if higher {
                "higher metric"
            } else {
                "lower metric"
            }
        ));
        let mut table = Table::new(vec![
            "algorithm",
            "final_metric",
            "best_metric",
            "lssr",
            "sim_time_s",
            "compute_s",
            "comm_s",
            "comm_MB",
        ]);
        for run in &self.runs {
            table.push_row(vec![
                run.algorithm.clone(),
                fmt_f(run.final_metric as f64, 3),
                fmt_f(run.best_metric as f64, 3),
                fmt_f(run.lssr, 4),
                fmt_f(run.sim_time_s, 3),
                fmt_f(run.compute_time_s, 3),
                fmt_f(run.comm_time_s, 3),
                fmt_f(run.bytes_communicated as f64 / (1024.0 * 1024.0), 1),
            ]);
        }
        out.push_str(&table.to_markdown());

        out.push_str("\n## selsync vs bsp\n");
        out.push_str(&format!(
            "same-iterations speedup: {}x\n",
            fmt_f(self.selsync_raw_speedup(), 3)
        ));
        let target = self.bsp().final_metric;
        match self.selsync_target_speedup() {
            Some(s) => {
                let bsp_t = self
                    .bsp()
                    .time_to_target(target)
                    .unwrap_or(self.bsp().sim_time_s);
                let sel_t = self.selsync().time_to_target(target).unwrap_or(f64::NAN);
                out.push_str(&format!(
                    "time-to-BSP-final-metric ({}): BSP {}s -> SelSync {}s, speedup {}x\n",
                    fmt_f(target as f64, 3),
                    fmt_f(bsp_t, 3),
                    fmt_f(sel_t, 3),
                    fmt_f(s, 3),
                ));
            }
            None => out.push_str(&format!(
                "time-to-BSP-final-metric ({}): SelSync never reached it\n",
                fmt_f(target as f64, 3),
            )),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario() -> Scenario {
        let mut s = Scenario::base("runner-test", 3, 24);
        s.train_samples = 384;
        s.test_samples = 96;
        s.eval_samples = 96;
        s.batch_size = 8;
        s.eval_every = 6;
        s
    }

    #[test]
    fn runner_produces_all_arms_with_identical_workload() {
        let report = run_scenario(&tiny_scenario()).unwrap();
        assert_eq!(report.runs.len(), 5);
        assert!(report.bsp().algorithm.starts_with("BSP"));
        assert!(report.selsync().algorithm.starts_with("SelSync"));
        assert!(report.run_named("SSP").is_some());
        assert!(report.run_named("FedAvg").is_some());
        assert!(report.run_named("LocalSGD").is_some());
        for run in &report.runs {
            assert_eq!(run.iterations, 24, "{}", run.algorithm);
            assert!(run.final_loss.is_finite(), "{}", run.algorithm);
        }
        // Every arm runs on the same (here: explicitly homogeneous) cluster — SSP must
        // not fall back to its profile-less paper-straggler default inside a scenario.
        let bsp = report.bsp();
        let ssp = report.run_named("SSP").unwrap();
        assert!(
            (bsp.compute_time_s - ssp.compute_time_s).abs() < 1e-9,
            "scenario arms must share one cluster: BSP {} vs SSP {}",
            bsp.compute_time_s,
            ssp.compute_time_s
        );
    }

    #[test]
    fn trace_block_captures_the_selsync_arm_only_when_enabled() {
        let mut scenario = tiny_scenario();
        assert!(run_scenario(&scenario).unwrap().trace.is_none());
        scenario.trace.enabled = true;
        let report = run_scenario(&scenario).unwrap();
        let log = report.trace.expect("enabled trace block captures a log");
        let decoded = selsync_tracelog::EventLog::decode(&log).expect("log decodes");
        let header = decoded.header().expect("log starts with a header");
        if let selsync_tracelog::Event::Header {
            algorithm, workers, ..
        } = header
        {
            assert!(algorithm.starts_with("SelSync"), "{algorithm}");
            assert_eq!(*workers, 3);
        }
        // Rounds granularity keeps the log to header/membership/round events.
        scenario.trace.granularity = selsync_tracelog::TraceGranularity::Rounds;
        let coarse = run_scenario(&scenario).unwrap().trace.unwrap();
        let coarse = selsync_tracelog::EventLog::decode(&coarse).unwrap();
        assert!(coarse.events.iter().all(|e| matches!(
            e,
            selsync_tracelog::Event::Header { .. }
                | selsync_tracelog::Event::Membership { .. }
                | selsync_tracelog::Event::Round { .. }
        )));
    }

    #[test]
    fn rendered_report_is_deterministic() {
        let a = run_scenario(&tiny_scenario()).unwrap().render();
        let b = run_scenario(&tiny_scenario()).unwrap().render();
        assert_eq!(a, b);
        assert!(a.contains("# scenario: runner-test (seed 42)"));
        assert!(a.contains("same-iterations speedup"));
    }

    #[test]
    fn different_seeds_render_differently() {
        let mut s = tiny_scenario();
        let a = run_scenario(&s).unwrap().render();
        s.seed = 43;
        let b = run_scenario(&s).unwrap().render();
        assert_ne!(a, b);
    }
}

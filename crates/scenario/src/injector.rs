//! The fault injector: a validated, compiled view of a [`Scenario`]'s cluster
//! imperfections, driven by the simulated clock (training iteration).
//!
//! Compilation happens once up front: the declarative [`crate::schema::FaultSpec`]s
//! become runtime [`selsync::conditions::FaultEvent`]s, the schedule is validated
//! against the topology, and the result plugs into both execution backends — the
//! sequential [`selsync::sim::Simulator`] and the thread-per-worker driver in
//! [`selsync::threaded`] — through `TrainConfig::conditions`. Because everything is a
//! pure function of `(worker, iteration)`, both backends observe exactly the same
//! cluster imperfections without any coordination.

use crate::schema::Scenario;
use selsync::conditions::ClusterConditions;
use selsync_comm::NetworkModel;

/// A compiled, validated fault schedule for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    conditions: ClusterConditions,
    workers: usize,
    iterations: usize,
    base_network: NetworkModel,
}

impl FaultInjector {
    /// Compile and validate a scenario's conditions.
    pub fn compile(scenario: &Scenario) -> Result<Self, String> {
        scenario.validate()?;
        Ok(FaultInjector {
            conditions: scenario.to_conditions(),
            workers: scenario.workers,
            iterations: scenario.iterations,
            base_network: scenario.network.to_model(),
        })
    }

    /// The compiled runtime conditions (what `TrainConfig::conditions` carries).
    pub fn conditions(&self) -> &ClusterConditions {
        &self.conditions
    }

    /// Compute-time multiplier of `worker` at `iteration`.
    pub fn compute_multiplier(&self, worker: usize, iteration: usize) -> f64 {
        self.conditions.compute_multiplier(worker, iteration)
    }

    /// Whether `worker` is alive at `iteration`.
    pub fn is_present(&self, worker: usize, iteration: usize) -> bool {
        self.conditions.is_present(worker, iteration)
    }

    /// The live workers at `iteration`.
    pub fn present_workers(&self, iteration: usize) -> Vec<usize> {
        self.conditions.present_workers(self.workers, iteration)
    }

    /// The network model in effect at `iteration`.
    pub fn network_at(&self, iteration: usize) -> NetworkModel {
        self.conditions.network_at(iteration, &self.base_network)
    }

    /// Deterministic one-line-per-event timeline of the schedule, for reports.
    pub fn timeline(&self) -> String {
        if self.conditions.faults.is_empty() && !self.conditions.has_heterogeneity() {
            return "steady cluster: homogeneous devices, no faults".to_string();
        }
        let mut lines = Vec::new();
        if self.conditions.has_heterogeneity() {
            let speeds: Vec<String> = self
                .conditions
                .base_speed
                .iter()
                .map(|s| format!("{s}"))
                .collect();
            lines.push(format!("device speeds: [{}]", speeds.join(", ")));
        }
        for fault in &self.conditions.faults {
            lines.push(fault.describe());
        }
        lines.join("\n")
    }

    /// Number of iterations the schedule was validated against.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Cluster size the schedule was validated against.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FaultSpec;

    #[test]
    fn compile_validates_and_exposes_queries() {
        let mut s = Scenario::base("injector-test", 4, 200);
        s.faults = vec![
            FaultSpec::Slowdown {
                worker: 2,
                start: 50,
                duration: 50,
                factor: 2.0,
            },
            FaultSpec::Crash {
                worker: 0,
                start: 80,
                rejoin: Some(120),
            },
            FaultSpec::Bandwidth {
                start: 0,
                duration: 10,
                factor: 0.5,
            },
        ];
        let inj = FaultInjector::compile(&s).unwrap();
        assert_eq!(inj.compute_multiplier(2, 75), 2.0);
        assert_eq!(inj.compute_multiplier(2, 150), 1.0);
        assert!(!inj.is_present(0, 100));
        assert_eq!(inj.present_workers(100), vec![1, 2, 3]);
        assert!(inj.network_at(5).bandwidth_bps < inj.network_at(50).bandwidth_bps);
        let timeline = inj.timeline();
        assert!(timeline.contains("worker 2 slows 2x"), "{timeline}");
        assert!(timeline.contains("worker 0 crashes at 80"), "{timeline}");
    }

    #[test]
    fn compile_rejects_invalid_scenarios() {
        let mut s = Scenario::base("bad", 2, 100);
        s.faults = vec![FaultSpec::Crash {
            worker: 5,
            start: 0,
            rejoin: None,
        }];
        assert!(FaultInjector::compile(&s).is_err());
    }

    #[test]
    fn steady_timeline_reads_steady() {
        let s = Scenario::base("steady-ish", 4, 100);
        let inj = FaultInjector::compile(&s).unwrap();
        assert!(inj.timeline().contains("steady cluster"));
    }
}

//! # selsync-scenario
//!
//! Declarative, deterministic scenario & fault-injection subsystem for the SelSync
//! reproduction.
//!
//! SelSync's headline claim — skipping low-value synchronizations wins most when the
//! cluster is imperfect — needs imperfect clusters to test against. This crate turns a
//! small TOML file (or a programmatic [`Scenario`]) into a fully reproducible
//! experiment over such a cluster:
//!
//! * [`schema`] — the [`Scenario`] type: workload, topology, per-worker device
//!   heterogeneity, base network, SelSync δ, and a timed fault schedule (transient
//!   stragglers, crash + rejoin, bandwidth degradation, latency spikes). Parses from
//!   and serializes to canonical TOML.
//! * [`toml`] — the offline mini-TOML codec behind the schema (round-trip stable).
//! * [`injector`] — [`FaultInjector`]: the compiled, validated schedule, driven by the
//!   simulated clock; it plugs into the sequential simulator and the threaded driver
//!   through `TrainConfig::conditions`.
//! * [`library`] — five built-in scenarios: `steady`, `transient-straggler`,
//!   `degraded-network`, `crash-rejoin`, `heterogeneous-fleet`.
//! * [`runner`] — runs BSP / SSP / FedAvg / local SGD / SelSync over one scenario with
//!   identical accounting and renders a deterministic comparison report; same scenario
//!   + same seed ⇒ byte-identical text, so recorded seeds become regression tests.
//! * [`sweep`] — expands a scenario's `[sweep]` block (δ grid × seed set × policy
//!   arms, including the Sync-Switch-style adaptive-δ policy) into one SelSync run per
//!   point, fanned across the deterministic worker pool, and aggregates mean ± spread
//!   per arm into a single byte-stable comparison report (text and JSON).
//!
//! ```
//! use selsync_scenario::{library, runner};
//!
//! let mut scenario = library::builtin("transient-straggler").unwrap();
//! scenario.iterations = 12;            // keep the doc-test fast
//! scenario.train_samples = 256;
//! scenario.test_samples = 64;
//! scenario.eval_samples = 64;
//! scenario.eval_every = 6;
//! scenario.workers = 3;
//! scenario.faults.clear();             // straggler window lies beyond 12 iterations
//! let report = runner::run_scenario(&scenario).unwrap();
//! assert_eq!(report.runs.len(), 5);
//! ```

pub mod injector;
pub mod library;
pub mod runner;
pub mod schema;
pub mod sweep;
pub mod toml;

pub use injector::FaultInjector;
pub use library::{all_builtin, builtin, BUILTIN_NAMES};
pub use runner::{run_scenario, ScenarioReport};
pub use schema::{FaultSpec, NetworkSpec, Scenario, SweepSpec, TraceSpec, TransportSpec};
pub use sweep::{run_sweep, ArmKind, ArmSummary, SweepReport};

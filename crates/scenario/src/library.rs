//! Built-in scenario library.
//!
//! Eight canonical cluster shapes, each small enough to run in seconds yet shaped to
//! surface the regime it is named after. All are constructed programmatically (so they
//! are always in sync with the schema) and serialize to TOML via
//! [`Scenario::to_toml_string`] — `scenario_run --dump <name>` prints them as starting
//! points for custom files.

use crate::schema::{FaultSpec, Scenario, SweepSpec};
use selsync::config::RejoinPull;
use selsync::policy::PolicySpec;
use selsync_comm::faults::{CommFaultSpec, PsFaultSpec};

/// Names of the built-in scenarios, in canonical order.
pub const BUILTIN_NAMES: [&str; 8] = [
    "steady",
    "transient-straggler",
    "degraded-network",
    "crash-rejoin",
    "heterogeneous-fleet",
    "elastic-churn",
    "flaky-links",
    "ps-brownout",
];

/// Look up a built-in scenario by name.
pub fn builtin(name: &str) -> Option<Scenario> {
    match name {
        "steady" => Some(steady()),
        "transient-straggler" => Some(transient_straggler()),
        "degraded-network" => Some(degraded_network()),
        "crash-rejoin" => Some(crash_rejoin()),
        "heterogeneous-fleet" => Some(heterogeneous_fleet()),
        "elastic-churn" => Some(elastic_churn()),
        "flaky-links" => Some(flaky_links()),
        "ps-brownout" => Some(ps_brownout()),
        _ => None,
    }
}

/// All built-in scenarios, in canonical order.
pub fn all_builtin() -> Vec<Scenario> {
    BUILTIN_NAMES
        .iter()
        .map(|n| builtin(n).expect("builtin name"))
        .collect()
}

/// Homogeneous, fault-free baseline: the shape every other scenario deviates from.
pub fn steady() -> Scenario {
    let mut s = Scenario::base("steady", 6, 240);
    s.description = "Homogeneous fault-free cluster: the control arm.".into();
    s
}

/// One worker slows 3.5× for the middle third of the run — the classic transient
/// straggler that stretches every synchronous round it participates in.
pub fn transient_straggler() -> Scenario {
    let mut s = Scenario::base("transient-straggler", 6, 240);
    s.description = "Worker 5 computes 3.5x slower during the middle third of the run.".into();
    s.faults = vec![FaultSpec::Slowdown {
        worker: 5,
        start: 80,
        duration: 80,
        factor: 3.5,
    }];
    s
}

/// Bandwidth collapses to 20% and latency spikes for a long window: synchronization
/// becomes expensive exactly where SelSync can skip it.
pub fn degraded_network() -> Scenario {
    let mut s = Scenario::base("degraded-network", 6, 240);
    s.description = "Bandwidth x0.2 and +10ms latency during iterations 60..180.".into();
    s.faults = vec![
        FaultSpec::Bandwidth {
            start: 60,
            duration: 120,
            factor: 0.2,
        },
        FaultSpec::Latency {
            start: 60,
            duration: 120,
            extra_ms: 10.0,
        },
    ];
    s
}

/// One worker crashes and later rejoins; another leaves for good near the end. The
/// cluster must keep training over the live subset (elastic membership).
pub fn crash_rejoin() -> Scenario {
    let mut s = Scenario::base("crash-rejoin", 6, 240);
    s.description =
        "Worker 2 crashes at 60 and rejoins at 140; worker 4 leaves for good at 200.".into();
    s.faults = vec![
        FaultSpec::Crash {
            worker: 2,
            start: 60,
            rejoin: Some(140),
        },
        FaultSpec::Crash {
            worker: 4,
            start: 200,
            rejoin: None,
        },
    ];
    // Crash scenarios ship with deterministic rejoin pulls so the threaded driver's
    // schedule stays parity-exact with the simulator's (see docs/SCENARIOS.md).
    s.rejoin_pull = RejoinPull::Scheduled;
    s
}

/// A permanently mixed fleet (three device generations), the regime where a fixed
/// synchronous pace is always set by the slowest device.
pub fn heterogeneous_fleet() -> Scenario {
    let mut s = Scenario::base("heterogeneous-fleet", 6, 240);
    s.description = "Three device generations: speeds [1.0, 1.0, 1.15, 1.15, 1.3, 1.5].".into();
    s.heterogeneity = vec![1.0, 1.0, 1.15, 1.15, 1.3, 1.5];
    s
}

/// Rolling worker churn: one worker is away (and later rejoins stale) at almost every
/// phase of the run, plus a mid-run bandwidth dip. The time-varying regime the
/// adaptive-δ policy targets: every rejoin pulls the PS global — stale under sparse
/// synchronization — and restarts the worker's `Δ(g)` tracker, producing the signal
/// spikes the policy reacts to. Carries the default sweep block (δ grid × 3 seeds ×
/// the adaptive arm), so `scenario_sweep elastic-churn` compares the arms directly.
pub fn elastic_churn() -> Scenario {
    let mut s = Scenario::base("elastic-churn", 6, 240);
    s.description =
        "Rolling churn: workers 2..5 each crash for 30 iterations in turn; bandwidth dips mid-run."
            .into();
    s.faults = vec![
        FaultSpec::Crash {
            worker: 2,
            start: 40,
            rejoin: Some(70),
        },
        FaultSpec::Crash {
            worker: 3,
            start: 90,
            rejoin: Some(120),
        },
        FaultSpec::Crash {
            worker: 4,
            start: 140,
            rejoin: Some(170),
        },
        FaultSpec::Crash {
            worker: 5,
            start: 190,
            rejoin: Some(220),
        },
        FaultSpec::Bandwidth {
            start: 100,
            duration: 60,
            factor: 0.3,
        },
    ];
    s.sweep = Some(SweepSpec {
        deltas: vec![0.0, 0.05, 0.15, 0.3],
        seeds: vec![42, 43, 44],
        policies: vec![PolicySpec::adaptive_default()],
    });
    s.rejoin_pull = RejoinPull::Scheduled;
    s
}

/// Lossy interconnect: every message leg has a chance of being dropped, corrupted,
/// duplicated or delayed under a seeded `[comm_faults]` schedule. Retries and
/// timeouts price the weather into the run's time/byte totals, duplicates and
/// reorders are absorbed by the idempotent message layer, and a worker whose
/// retry budget runs dry is evicted like a scheduled crash (see
/// `docs/COMM_FAULTS.md`).
pub fn flaky_links() -> Scenario {
    let mut s = Scenario::base("flaky-links", 6, 240);
    s.description =
        "Lossy links: 8% drop / 2% corrupt / 4% duplicate / 6% delay per leg, 5-attempt budget."
            .into();
    s.comm_faults = Some(CommFaultSpec {
        seed: 42,
        drop: 0.08,
        duplicate: 0.04,
        corrupt: 0.02,
        delay: 0.06,
        delay_rounds: 0,
        retry_budget: 5,
        timeout_s: 5.0e-3,
    });
    s
}

/// Parameter-server weather: two scheduled outage windows plus a 2% per-round
/// brownout chance under a seeded `[ps_faults]` schedule. While the server is down,
/// workers degrade to local-only rounds (no δ fetch, no synchronization) and the
/// first reachable round after an outage forces a catch-up synchronization — the
/// graceful-degradation regime `docs/RECOVERY.md` describes. Carries its own sweep
/// block (BSP-equivalent δ = 0, a mid δ, the adaptive arm and the variance-gated
/// arm) so `scenario_sweep ps-brownout` compares how each policy absorbs the
/// outages.
pub fn ps_brownout() -> Scenario {
    let mut s = Scenario::base("ps-brownout", 6, 240);
    s.description =
        "Parameter server dark during iterations 80..110 and 170..185, 2% flaky per round.".into();
    s.ps_faults = Some(PsFaultSpec {
        seed: 42,
        windows: vec![(80, 30), (170, 15)],
        flaky: 0.02,
    });
    s.sweep = Some(SweepSpec {
        deltas: vec![0.0, 0.15],
        seeds: vec![42, 43],
        policies: vec![
            PolicySpec::adaptive_default(),
            PolicySpec::variance_default(),
        ],
    });
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injector::FaultInjector;

    #[test]
    fn all_builtins_are_valid_and_named_consistently() {
        let all = all_builtin();
        assert_eq!(all.len(), BUILTIN_NAMES.len());
        for (scenario, name) in all.iter().zip(BUILTIN_NAMES.iter()) {
            assert_eq!(&scenario.name, name);
            assert!(
                !scenario.description.is_empty(),
                "{name} needs a description"
            );
            scenario
                .validate()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            FaultInjector::compile(scenario).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(builtin("no-such-scenario").is_none());
    }

    #[test]
    fn builtins_round_trip_through_toml() {
        for scenario in all_builtin() {
            let text = scenario.to_toml_string();
            let parsed = crate::schema::Scenario::from_toml_str(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
            assert_eq!(scenario, parsed, "{}", scenario.name);
        }
    }

    #[test]
    fn builtins_cover_the_advertised_regimes() {
        assert!(steady().faults.is_empty() && steady().heterogeneity.is_empty());
        assert!(matches!(
            transient_straggler().faults[..],
            [FaultSpec::Slowdown { factor, .. }] if factor > 1.0
        ));
        assert!(degraded_network()
            .faults
            .iter()
            .any(|f| matches!(f, FaultSpec::Bandwidth { factor, .. } if *factor < 1.0)));
        assert!(crash_rejoin().faults.iter().any(|f| matches!(
            f,
            FaultSpec::Crash {
                rejoin: Some(_),
                ..
            }
        )));
        assert!(heterogeneous_fleet().heterogeneity.iter().any(|&s| s > 1.0));
        let weather = flaky_links().comm_faults.expect("flaky-links has weather");
        assert!(!weather.is_lossless() && weather.retry_budget > 1);
        let outages = ps_brownout().ps_faults.expect("ps-brownout has PS weather");
        assert!(!outages.is_reliable() && !outages.windows.is_empty());
        let sweep = ps_brownout().sweep.expect("ps-brownout has a sweep block");
        assert!(sweep.deltas.contains(&0.0), "needs the BSP-equivalent arm");
        assert!(sweep
            .policies
            .iter()
            .any(|p| matches!(p, PolicySpec::Variance { .. })));
    }
}

//! Minimal TOML codec for scenario files.
//!
//! The workspace builds offline, so instead of the `toml`/`serde` stack this module
//! implements the subset scenario files need: top-level key/value pairs, `[section]`
//! tables, `[[section]]` arrays of tables, and string / integer / float / boolean /
//! array values, with `#` comments. The serializer emits a canonical form (floats always
//! carry a decimal point or exponent), so `parse ∘ serialize` is the identity on parsed
//! documents — the property the scenario round-trip tests pin down.

use std::fmt;

/// A TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float (serialized with a decimal point or exponent so it re-parses as float).
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A homogeneous or heterogeneous array of values.
    Array(Vec<Value>),
}

impl Value {
    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer content, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric content as f64 (accepts both floats and integers, as TOML writers often
    /// drop the fractional part of a whole number).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array content, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// An insertion-ordered table of key/value pairs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    entries: Vec<(String, Value)>,
}

impl Table {
    /// Empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Set `key` (replacing an existing entry of the same name).
    pub fn set(&mut self, key: &str, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key.to_string(), value));
        }
    }

    /// Look up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[(String, Value)] {
        &self.entries
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A parsed TOML document: root-level entries, named `[sections]`, and `[[arrays]]` of
/// tables, each in file order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    /// Key/value pairs before the first header.
    pub root: Table,
    /// `[name]` sections in file order.
    pub sections: Vec<(String, Table)>,
    /// `[[name]]` array-of-table entries in file order.
    pub table_arrays: Vec<(String, Table)>,
}

impl Document {
    /// Empty document.
    pub fn new() -> Self {
        Document::default()
    }

    /// The first `[name]` section, if present.
    pub fn section(&self, name: &str) -> Option<&Table> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// All `[[name]]` tables, in file order.
    pub fn tables_named(&self, name: &str) -> Vec<&Table> {
        self.table_arrays
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, t)| t)
            .collect()
    }
}

/// A parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based line where parsing failed (0 for structural errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TOML parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TomlError {}

fn err(line: usize, message: impl Into<String>) -> TomlError {
    TomlError {
        line,
        message: message.into(),
    }
}

/// Parse a TOML document (the subset described in the module docs).
pub fn parse(text: &str) -> Result<Document, TomlError> {
    enum Target {
        Root,
        Section(usize),
        ArrayTable(usize),
    }
    let mut doc = Document::new();
    let mut target = Target::Root;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            let name = name.trim();
            if name.is_empty() {
                return Err(err(lineno, "empty table-array name"));
            }
            doc.table_arrays.push((name.to_string(), Table::new()));
            target = Target::ArrayTable(doc.table_arrays.len() - 1);
        } else if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let name = name.trim();
            if name.is_empty() {
                return Err(err(lineno, "empty section name"));
            }
            if doc.sections.iter().any(|(n, _)| n == name) {
                return Err(err(lineno, format!("duplicate section [{name}]")));
            }
            doc.sections.push((name.to_string(), Table::new()));
            target = Target::Section(doc.sections.len() - 1);
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim();
            if key.is_empty()
                || !key
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
            {
                return Err(err(lineno, format!("invalid key {key:?}")));
            }
            let value = parse_value(line[eq + 1..].trim(), lineno)?;
            let table = match target {
                Target::Root => &mut doc.root,
                Target::Section(i) => &mut doc.sections[i].1,
                Target::ArrayTable(i) => &mut doc.table_arrays[i].1,
            };
            if table.get(key).is_some() {
                return Err(err(lineno, format!("duplicate key {key:?}")));
            }
            table.set(key, value);
        } else {
            return Err(err(
                lineno,
                format!("expected `key = value` or a header, got {line:?}"),
            ));
        }
    }
    Ok(doc)
}

/// Strip a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, TomlError> {
    if text.is_empty() {
        return Err(err(lineno, "missing value"));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let (s, _) = parse_string_body(rest, lineno)?;
        return Ok(Value::Str(s));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_value(part, lineno)?);
        }
        return Ok(Value::Array(items));
    }
    // Numbers. TOML allows underscores as digit separators.
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    if cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E') {
        cleaned
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(lineno, format!("invalid float {text:?}")))
    } else {
        cleaned
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| err(lineno, format!("invalid value {text:?}")))
    }
}

/// Parse a string body up to the closing quote, handling `\"`, `\\`, `\n`, `\t`.
/// Returns the unescaped content; trailing characters after the closing quote are
/// rejected by the caller's context (we only accept whole-value strings).
fn parse_string_body(rest: &str, lineno: usize) -> Result<(String, usize), TomlError> {
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                if !rest[i + 1..].trim().is_empty() {
                    return Err(err(lineno, "unexpected text after closing quote"));
                }
                return Ok((out, i + 1));
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                other => {
                    return Err(err(
                        lineno,
                        format!(
                            "unsupported escape \\{}",
                            other.map(|(_, c)| c).unwrap_or(' ')
                        ),
                    ))
                }
            },
            _ => out.push(c),
        }
    }
    Err(err(lineno, "unterminated string"))
}

/// Split an array body on top-level commas (commas inside nested arrays or strings do
/// not split).
fn split_top_level(inner: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut current = String::new();
    for c in inner.chars() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                current.push(c);
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth = depth.saturating_sub(1),
            ',' if !in_string && depth == 0 => {
                parts.push(std::mem::take(&mut current));
                escaped = false;
                continue;
            }
            _ => {}
        }
        escaped = false;
        current.push(c);
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

/// Serialize a document to canonical TOML (the inverse of [`parse`] on its image).
pub fn serialize(doc: &Document) -> String {
    let mut out = String::new();
    for (k, v) in doc.root.entries() {
        out.push_str(&format!("{k} = {}\n", fmt_value(v)));
    }
    for (name, table) in &doc.sections {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!("[{name}]\n"));
        for (k, v) in table.entries() {
            out.push_str(&format!("{k} = {}\n", fmt_value(v)));
        }
    }
    for (name, table) in &doc.table_arrays {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!("[[{name}]]\n"));
        for (k, v) in table.entries() {
            out.push_str(&format!("{k} = {}\n", fmt_value(v)));
        }
    }
    out
}

fn fmt_value(v: &Value) -> String {
    match v {
        Value::Str(s) => {
            let escaped = s
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
                .replace('\t', "\\t");
            format!("\"{escaped}\"")
        }
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            // Rust's shortest round-trip float formatting, forced to re-parse as a
            // float: whole numbers get an explicit `.0`.
            let s = format!("{f}");
            if s.contains('.') || s.contains('e') || s.contains('E') || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(fmt_value).collect();
            format!("[{}]", inner.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a scenario-ish document
title = "hello # not a comment"
count = 3

[network]
bandwidth_gbps = 5.0
latency_ms = 1.5   # trailing comment
fast = false

[profile]
speeds = [1.0, 1.05, 1.4]
ids = [1, 2, 3]

[[fault]]
kind = "slowdown"
worker = 7
factor = 3.5

[[fault]]
kind = "crash"
worker = 2
"#;

    #[test]
    fn parses_sections_arrays_and_scalars() {
        let doc = parse(SAMPLE).unwrap();
        assert_eq!(
            doc.root.get("title").unwrap().as_str(),
            Some("hello # not a comment")
        );
        assert_eq!(doc.root.get("count").unwrap().as_int(), Some(3));
        let net = doc.section("network").unwrap();
        assert_eq!(net.get("bandwidth_gbps").unwrap().as_float(), Some(5.0));
        assert_eq!(net.get("latency_ms").unwrap().as_float(), Some(1.5));
        assert_eq!(net.get("fast").unwrap().as_bool(), Some(false));
        let speeds = doc
            .section("profile")
            .unwrap()
            .get("speeds")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(speeds.len(), 3);
        assert_eq!(speeds[2].as_float(), Some(1.4));
        let faults = doc.tables_named("fault");
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].get("kind").unwrap().as_str(), Some("slowdown"));
        assert_eq!(faults[1].get("worker").unwrap().as_int(), Some(2));
    }

    #[test]
    fn serialize_then_parse_is_identity() {
        let doc = parse(SAMPLE).unwrap();
        let text = serialize(&doc);
        let reparsed = parse(&text).unwrap();
        assert_eq!(doc, reparsed);
        // And serialization is a fixed point after one round.
        assert_eq!(text, serialize(&reparsed));
    }

    #[test]
    fn whole_floats_keep_their_floatness() {
        let mut doc = Document::new();
        doc.root.set("x", Value::Float(3.0));
        doc.root.set("y", Value::Float(2.5e-3));
        let text = serialize(&doc);
        assert!(text.contains("x = 3.0"), "{text}");
        let reparsed = parse(&text).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let mut doc = Document::new();
        doc.root
            .set("s", Value::Str("a \"quoted\" piece\nwith\\slash".into()));
        let reparsed = parse(&serialize(&doc)).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken line\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse("x = ").is_err());
        assert!(parse("x = \"unterminated").is_err());
        assert!(parse("[dup]\n[dup]").is_err());
        assert!(parse("x = 1\nx = 2").is_err());
    }

    #[test]
    fn underscored_integers_parse() {
        let doc = parse("n = 1_000_000").unwrap();
        assert_eq!(doc.root.get("n").unwrap().as_int(), Some(1_000_000));
    }
}

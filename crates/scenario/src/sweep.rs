//! Scenario sweeps: one scenario × a δ grid × a seed set × policy arms, aggregated
//! into a single deterministic comparison report.
//!
//! A [`crate::schema::SweepSpec`] expands into one SelSync run per `(arm, seed)` pair:
//! every δ in the grid becomes a fixed-threshold arm, and every
//! [`selsync::policy::PolicySpec`] becomes a policy arm (scheduled / adaptive δ). All
//! runs share the scenario's workload, cluster conditions and cost models — only the δ
//! policy and the seed differ. Sweep points are fanned out across the deterministic
//! worker pool (each point's *inner* round parallelism degrades to the sequential
//! path while it runs inside a pool task, which is bit-identical by the PR 3
//! contract), and per-arm statistics are aggregated in arm-major, seed-minor order —
//! so the rendered report and the JSON are byte-identical for every
//! `SELSYNC_THREADS` value.
//!
//! The report's target convention follows the paper: the δ = 0 arm (BSP-equivalent:
//! every step synchronizes) defines the per-seed target metric, with a 0.5% tolerance;
//! each arm reports how many seeds reached it and the mean number of synchronizations
//! spent getting there. This is the quantity the adaptive-δ arm is designed to win:
//! reach the target accuracy with fewer synchronizations than the best fixed δ.

use crate::injector::FaultInjector;
use crate::schema::{Scenario, SweepSpec};
use selsync::algorithms;
use selsync::config::AlgorithmSpec;
use selsync::policy::PolicySpec;
use selsync::report::RunReport;
use selsync_metrics::stats::Streaming;
use selsync_metrics::table::{fmt_f, Table};
use selsync_tensor::par::{self, SendPtr};
use selsync_tracelog::TraceSink;

/// One arm of a sweep: a fixed δ from the grid, or a policy.
#[derive(Debug, Clone, PartialEq)]
pub enum ArmKind {
    /// A fixed-threshold arm from the δ grid.
    Fixed(f32),
    /// A scheduled / adaptive policy arm.
    Policy(PolicySpec),
}

/// Mean ± spread (population standard deviation) of one statistic over the seed set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stat {
    /// Mean over seeds.
    pub mean: f64,
    /// Population standard deviation over seeds (0 for a single seed).
    pub spread: f64,
}

fn stat(xs: impl Iterator<Item = f64>) -> Stat {
    let mut acc = Streaming::new();
    for x in xs {
        acc.push(x);
    }
    Stat {
        mean: acc.mean(),
        spread: acc.std_dev(),
    }
}

impl Stat {
    /// `mean ± spread` at 3 decimals (the report cell format).
    pub fn cell(&self) -> String {
        format!("{} ± {}", fmt_f(self.mean, 3), fmt_f(self.spread, 3))
    }
}

/// Aggregated results of one arm over the seed set.
#[derive(Debug, Clone)]
pub struct ArmSummary {
    /// The arm's algorithm label (identical across its seeds).
    pub label: String,
    /// What the arm is (fixed δ or a policy).
    pub kind: ArmKind,
    /// One report per seed, in seed order.
    pub runs: Vec<RunReport>,
    /// Final held-out metric.
    pub final_metric: Stat,
    /// Best held-out metric.
    pub best_metric: Stat,
    /// Local-to-synchronous step ratio.
    pub lssr: Stat,
    /// Synchronized steps over the whole run.
    pub sync_steps: Stat,
    /// δ-policy regime switches over the whole run (0 for fixed/scheduled arms).
    pub switches: Stat,
    /// Simulated wall-clock seconds.
    pub sim_time_s: Stat,
    /// Megabytes moved over the simulated network.
    pub comm_mb: Stat,
    /// Number of seeds whose run reached the per-seed target metric.
    pub reached_target: usize,
    /// Mean synchronizations spent up to the target-reaching evaluation, over the
    /// seeds that reached it (`None` when none did).
    pub syncs_to_target: Option<f64>,
    /// The encoded event log of this arm's first-seed run, when the scenario's
    /// `[trace]` block enables capture (`None` otherwise). One seed per arm keeps the
    /// sweep's memory bounded while still giving every arm a replayable trace.
    pub trace: Option<String>,
}

/// The aggregated sweep report: deterministic text and JSON renderings.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario description.
    pub description: String,
    /// Deterministic fault-timeline summary.
    pub timeline: String,
    /// The seeds every arm ran at.
    pub seeds: Vec<u64>,
    /// Whether larger metrics are better for this workload.
    pub higher_is_better: bool,
    /// Index of the target-defining arm (the δ = 0 arm when present, otherwise the
    /// arm with the best mean final metric).
    pub baseline: usize,
    /// One summary per arm, fixed-δ arms first (grid order), then policy arms.
    pub arms: Vec<ArmSummary>,
}

/// Relative tolerance on the per-seed target metric (0.5%).
const TARGET_TOLERANCE: f32 = 0.005;

fn adjusted_target(target: f32, higher: bool) -> f32 {
    if higher {
        target * (1.0 - TARGET_TOLERANCE)
    } else {
        target * (1.0 + TARGET_TOLERANCE)
    }
}

/// Synchronizations a run spent up to (and including) the evaluation at which it first
/// reached `target` (`None` if it never did).
fn syncs_to_target(run: &RunReport, target: f32) -> Option<usize> {
    run.iterations_to_target(target)
        .map(|it| run.sync_rounds.iter().filter(|&&r| r <= it).count())
}

/// Map `it` from a run of `from_iterations` onto a run of `to_iterations`, keeping
/// its relative position (rounded, clamped into the target range). The single
/// scaling rule behind [`rescale_fault_windows`] and [`quick_variant`]'s
/// policy-budget rescaling, so fault windows, schedule stages and adaptive round
/// budgets all shrink identically.
fn scaled_iteration(it: usize, from_iterations: usize, to_iterations: usize) -> usize {
    let ratio = to_iterations as f64 / from_iterations.max(1) as f64;
    ((it as f64 * ratio).round() as usize).min(to_iterations)
}

/// Rescale every iteration-keyed fault window of `scenario` into a run of
/// `iterations` iterations — windows keep their relative position and never collapse
/// (durations stay ≥ 1, a rejoin stays after its crash) — and set
/// `scenario.iterations` accordingly. Shared by [`quick_variant`] and the
/// parity/regression test suites, so every "scaled-down scenario" in the repo means
/// the same schedule.
pub fn rescale_fault_windows(scenario: &mut Scenario, iterations: usize) {
    let scale = |it: usize| scaled_iteration(it, scenario.iterations, iterations);
    for fault in &mut scenario.faults {
        match fault {
            crate::schema::FaultSpec::Slowdown {
                start, duration, ..
            }
            | crate::schema::FaultSpec::Bandwidth {
                start, duration, ..
            }
            | crate::schema::FaultSpec::Latency {
                start, duration, ..
            } => {
                *start = scale(*start);
                *duration = scale(*duration).max(1);
            }
            crate::schema::FaultSpec::Crash { start, rejoin, .. } => {
                *start = scale(*start);
                if let Some(r) = rejoin {
                    *r = scale(*r).max(*start + 1);
                }
            }
        }
    }
    // PS outage windows are iteration-keyed exactly like worker fault windows.
    if let Some(spec) = &mut scenario.ps_faults {
        for (start, duration) in &mut spec.windows {
            *start = scale(*start);
            *duration = scale(*duration).max(1);
        }
    }
    scenario.iterations = iterations;
}

/// A CI-sized variant of a scenario for sweep smoke runs: fewer iterations and
/// samples, at most two seeds, with every fault window rescaled to the shrunk
/// iteration range so the cluster shape survives the shrink.
pub fn quick_variant(scenario: &Scenario) -> Scenario {
    let mut s = scenario.clone();
    let iterations = 60usize;
    let scale = |it: usize| scaled_iteration(it, scenario.iterations, iterations);
    rescale_fault_windows(&mut s, iterations);
    s.eval_every = 6;
    s.train_samples = 768;
    s.test_samples = 192;
    s.eval_samples = 192;
    let mut sweep = s
        .sweep
        .clone()
        .unwrap_or_else(|| SweepSpec::default_grid(s.seed));
    sweep.seeds.truncate(2);
    // Policy arms are iteration-keyed like fault windows: rescale schedule stage
    // starts (keeping boundaries distinct) and the adaptive policy's round budgets —
    // an unscaled `warmup`/`patience` sized for the full run could otherwise exceed
    // the quick run entirely, leaving the arm stuck in its eager regime (never a
    // single local step) and making the quick arm ordering meaningless.
    for policy in &mut sweep.policies {
        match policy {
            PolicySpec::Schedule { starts, .. } => {
                let mut prev: Option<usize> = None;
                for start in starts.iter_mut() {
                    let scaled = scale(*start);
                    *start = match prev {
                        Some(p) => scaled.max(p + 1),
                        None => scaled,
                    };
                    prev = Some(*start);
                }
            }
            PolicySpec::Adaptive {
                warmup, patience, ..
            }
            | PolicySpec::Variance {
                warmup, patience, ..
            } => {
                // `patience ≥ 1` is a validation requirement; a non-zero warmup keeps
                // its "always eager at first" character at minimum length.
                if *warmup > 0 {
                    *warmup = scale(*warmup).max(1);
                }
                *patience = scale(*patience).max(1);
            }
            PolicySpec::Fixed { .. } => {}
        }
    }
    s.sweep = Some(sweep);
    s
}

/// Run every arm × seed of the scenario's sweep (or [`SweepSpec::default_grid`] when
/// the scenario has no sweep block) and aggregate per-arm statistics.
pub fn run_sweep(scenario: &Scenario) -> Result<SweepReport, String> {
    let injector = FaultInjector::compile(scenario)?;
    let spec = scenario
        .sweep
        .clone()
        .unwrap_or_else(|| SweepSpec::default_grid(scenario.seed));
    spec.validate()?;

    let arms: Vec<ArmKind> = spec
        .deltas
        .iter()
        .map(|&d| ArmKind::Fixed(d))
        .chain(spec.policies.iter().cloned().map(ArmKind::Policy))
        .collect();
    let seeds = spec.seeds.clone();

    // Fan the (arm, seed) grid across the worker pool. Each point trains on its own
    // simulator; slots are disjoint, and a point's result does not depend on which
    // pool thread runs it, so the grid is deterministic for every thread count.
    let n_jobs = arms.len() * seeds.len();
    let mut results: Vec<Option<(RunReport, Option<String>)>> = (0..n_jobs).map(|_| None).collect();
    {
        let ptr = SendPtr(results.as_mut_ptr());
        let arms = &arms;
        let seeds = &seeds;
        par::parallel_for(n_jobs, |j| {
            let (a, s) = (j / seeds.len(), j % seeds.len());
            let mut cfg = match &arms[a] {
                ArmKind::Fixed(d) => scenario.train_config(AlgorithmSpec::selsync(*d)),
                ArmKind::Policy(p) => {
                    let mut cfg = scenario.train_config(AlgorithmSpec::selsync(scenario.delta));
                    cfg.delta_policy = Some(p.clone());
                    cfg
                }
            };
            cfg.seed = seeds[s];
            // Sweep points run concurrently and checkpoint paths are keyed by round
            // only; arms writing into one directory would race. Durable checkpoints
            // belong to single runs (`scenario_run` / `scenario_replay`), not sweeps.
            cfg.checkpoint = None;
            // One replayable event log per arm: its first-seed run (bounded memory).
            let traced = scenario.trace.enabled && s == 0;
            if traced {
                cfg.trace = TraceSink::capture(scenario.trace.granularity);
            }
            let report = algorithms::run(&cfg);
            let log = traced.then(|| cfg.trace.take_log().encode());
            // SAFETY: each task owns slot `j`; `parallel_for` blocks until all tasks
            // finish, so the borrow outlives every write.
            unsafe {
                *ptr.get().add(j) = Some((report, log));
            }
        });
    }

    let mut traces: Vec<Option<String>> = Vec::with_capacity(arms.len());
    let per_arm: Vec<Vec<RunReport>> = arms
        .iter()
        .enumerate()
        .map(|(a, _)| {
            (0..seeds.len())
                .map(|s| {
                    let (report, log) = results[a * seeds.len() + s]
                        .take()
                        .expect("sweep point completed");
                    if s == 0 {
                        traces.push(log);
                    }
                    report
                })
                .collect()
        })
        .collect();

    let higher = per_arm[0][0].higher_is_better;
    // The δ = 0 arm (BSP-equivalent) defines the target; without one, the arm with
    // the best mean final metric does.
    let baseline = arms
        .iter()
        .position(|a| matches!(a, ArmKind::Fixed(d) if *d == 0.0))
        .unwrap_or_else(|| {
            let best = |runs: &Vec<RunReport>| {
                runs.iter().map(|r| r.final_metric as f64).sum::<f64>() / runs.len() as f64
            };
            (0..per_arm.len())
                .max_by(|&a, &b| {
                    let (xa, xb) = (best(&per_arm[a]), best(&per_arm[b]));
                    let ord = xa.partial_cmp(&xb).expect("finite metrics");
                    if higher {
                        ord
                    } else {
                        ord.reverse()
                    }
                })
                .expect("at least one arm")
        });

    let targets: Vec<f32> = per_arm[baseline]
        .iter()
        .map(|r| adjusted_target(r.final_metric, higher))
        .collect();

    let summaries: Vec<ArmSummary> = arms
        .into_iter()
        .zip(per_arm)
        .zip(traces)
        .map(|((kind, runs), trace)| {
            let mut reached = 0usize;
            let mut sync_acc = Streaming::new();
            for (run, &target) in runs.iter().zip(targets.iter()) {
                if let Some(syncs) = syncs_to_target(run, target) {
                    reached += 1;
                    sync_acc.push(syncs as f64);
                }
            }
            ArmSummary {
                label: runs[0].algorithm.clone(),
                kind,
                final_metric: stat(runs.iter().map(|r| r.final_metric as f64)),
                best_metric: stat(runs.iter().map(|r| r.best_metric as f64)),
                lssr: stat(runs.iter().map(|r| r.lssr)),
                sync_steps: stat(runs.iter().map(|r| r.sync_steps as f64)),
                switches: stat(runs.iter().map(|r| r.policy_switches as f64)),
                sim_time_s: stat(runs.iter().map(|r| r.sim_time_s)),
                comm_mb: stat(
                    runs.iter()
                        .map(|r| r.bytes_communicated as f64 / (1024.0 * 1024.0)),
                ),
                reached_target: reached,
                syncs_to_target: (reached > 0).then(|| sync_acc.mean()),
                trace,
                runs,
            }
        })
        .collect();

    Ok(SweepReport {
        scenario: scenario.name.clone(),
        description: scenario.description.clone(),
        timeline: injector.timeline(),
        seeds,
        higher_is_better: higher,
        baseline,
        arms: summaries,
    })
}

impl SweepReport {
    /// The first arm whose label starts with `prefix`.
    pub fn arm_named(&self, prefix: &str) -> Option<&ArmSummary> {
        self.arms.iter().find(|a| a.label.starts_with(prefix))
    }

    /// Index of the *best fixed* arm: among fixed-δ arms (grid entries, or policy arms
    /// written as `kind = "fixed"` tables — same semantics) whose every seed reached
    /// the target, the one spending the fewest mean synchronizations to get there.
    /// `None` when no fixed arm reaches the target on all seeds.
    pub fn best_fixed(&self) -> Option<usize> {
        self.arms
            .iter()
            .enumerate()
            .filter(|(_, a)| {
                matches!(
                    a.kind,
                    ArmKind::Fixed(_) | ArmKind::Policy(PolicySpec::Fixed { .. })
                ) && a.reached_target == self.seeds.len()
            })
            .min_by(|(_, a), (_, b)| {
                let (xa, xb) = (
                    a.syncs_to_target.expect("reached"),
                    b.syncs_to_target.expect("reached"),
                );
                xa.partial_cmp(&xb).expect("finite sync counts")
            })
            .map(|(i, _)| i)
    }

    /// Render the aggregated report as deterministic text (fixed-precision numbers,
    /// stable ordering; no clocks, no paths).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# sweep: {} ({} arms x {} seeds)\n",
            self.scenario,
            self.arms.len(),
            self.seeds.len()
        ));
        if !self.description.is_empty() {
            out.push_str(&format!("{}\n", self.description));
        }
        out.push_str("\n## cluster timeline\n");
        out.push_str(&self.timeline);
        out.push('\n');
        let seeds: Vec<String> = self.seeds.iter().map(|s| s.to_string()).collect();
        out.push_str(&format!("\nseeds: [{}]\n", seeds.join(", ")));
        out.push_str(&format!(
            "target: per-seed final metric of {} with {}% tolerance ({} is better)\n",
            self.arms[self.baseline].label,
            fmt_f(TARGET_TOLERANCE as f64 * 100.0, 1),
            if self.higher_is_better {
                "higher metric"
            } else {
                "lower metric"
            }
        ));

        out.push_str("\n## per-arm results (mean ± spread over seeds)\n\n");
        let mut table = Table::new(vec![
            "arm",
            "final_metric",
            "best_metric",
            "lssr",
            "sync_steps",
            "switches",
            "syncs_to_target",
            "reached",
            "sim_time_s",
            "comm_MB",
        ]);
        for arm in &self.arms {
            table.push_row(vec![
                arm.label.clone(),
                arm.final_metric.cell(),
                arm.best_metric.cell(),
                arm.lssr.cell(),
                arm.sync_steps.cell(),
                arm.switches.cell(),
                arm.syncs_to_target
                    .map(|s| fmt_f(s, 1))
                    .unwrap_or_else(|| "-".into()),
                format!("{}/{}", arm.reached_target, self.seeds.len()),
                arm.sim_time_s.cell(),
                arm.comm_mb.cell(),
            ]);
        }
        out.push_str(&table.to_markdown());

        // Where the switching arms flipped regimes (first seed; the count column
        // above aggregates over all seeds).
        let switching: Vec<&ArmSummary> = self
            .arms
            .iter()
            .filter(|a| !a.runs[0].switch_rounds.is_empty())
            .collect();
        if !switching.is_empty() {
            out.push_str(&format!(
                "\n## regime-switch rounds (seed {})\n",
                self.seeds[0]
            ));
            for arm in switching {
                let rounds: Vec<String> = arm.runs[0]
                    .switch_rounds
                    .iter()
                    .map(|r| r.to_string())
                    .collect();
                out.push_str(&format!("{}: [{}]\n", arm.label, rounds.join(", ")));
            }
        }

        // The comparison the adaptive arm is designed to win: fewest syncs to the
        // target among the arms that reach it.
        let policy_arms: Vec<&ArmSummary> = self
            .arms
            .iter()
            .filter(|a| matches!(a.kind, ArmKind::Policy(_)))
            .collect();
        if !policy_arms.is_empty() {
            out.push_str("\n## policy arms vs best fixed δ\n");
            match self.best_fixed() {
                Some(best) => {
                    let b = &self.arms[best];
                    out.push_str(&format!(
                        "best fixed: {} ({} mean syncs to target)\n",
                        b.label,
                        fmt_f(b.syncs_to_target.expect("reached"), 1)
                    ));
                    for arm in policy_arms {
                        match arm.syncs_to_target {
                            Some(s) if arm.reached_target == self.seeds.len() => {
                                out.push_str(&format!(
                                    "{}: reached on {}/{} seeds with {} mean syncs to target ({})\n",
                                    arm.label,
                                    arm.reached_target,
                                    self.seeds.len(),
                                    fmt_f(s, 1),
                                    if s < b.syncs_to_target.expect("reached") {
                                        "fewer than best fixed"
                                    } else {
                                        "not fewer than best fixed"
                                    }
                                ));
                            }
                            _ => out.push_str(&format!(
                                "{}: reached the target on {}/{} seeds\n",
                                arm.label,
                                arm.reached_target,
                                self.seeds.len()
                            )),
                        }
                    }
                }
                None => out.push_str("no fixed arm reached the target on every seed\n"),
            }
        }
        out
    }

    /// Render as a deterministic JSON object (stable key order, shortest float
    /// representation) for CI archiving next to the `bench_kernels` report.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scenario\": \"{}\",\n", esc(&self.scenario)));
        let seeds: Vec<String> = self.seeds.iter().map(|s| s.to_string()).collect();
        out.push_str(&format!("  \"seeds\": [{}],\n", seeds.join(", ")));
        out.push_str(&format!(
            "  \"higher_is_better\": {},\n",
            self.higher_is_better
        ));
        out.push_str(&format!(
            "  \"baseline\": \"{}\",\n",
            esc(&self.arms[self.baseline].label)
        ));
        out.push_str("  \"arms\": [\n");
        for (i, arm) in self.arms.iter().enumerate() {
            let stat_fields = [
                ("final_metric", arm.final_metric),
                ("best_metric", arm.best_metric),
                ("lssr", arm.lssr),
                ("sync_steps", arm.sync_steps),
                ("switches", arm.switches),
                ("sim_time_s", arm.sim_time_s),
                ("comm_mb", arm.comm_mb),
            ];
            out.push_str("    {");
            out.push_str(&format!("\"label\": \"{}\"", esc(&arm.label)));
            for (name, s) in stat_fields {
                out.push_str(&format!(
                    ", \"{name}_mean\": {}, \"{name}_spread\": {}",
                    s.mean, s.spread
                ));
            }
            out.push_str(&format!(", \"reached_target\": {}", arm.reached_target));
            out.push_str(&format!(
                ", \"syncs_to_target_mean\": {}",
                arm.syncs_to_target
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "null".into())
            ));
            let rounds: Vec<String> = arm.runs[0]
                .switch_rounds
                .iter()
                .map(|r| r.to_string())
                .collect();
            out.push_str(&format!(", \"switch_rounds\": [{}]", rounds.join(", ")));
            out.push_str(if i + 1 == self.arms.len() {
                "}\n"
            } else {
                "},\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SweepSpec;

    fn tiny_sweep_scenario() -> Scenario {
        let mut s = Scenario::base("sweep-test", 3, 24);
        s.train_samples = 384;
        s.test_samples = 96;
        s.eval_samples = 96;
        s.batch_size = 8;
        s.eval_every = 6;
        s.sweep = Some(SweepSpec {
            deltas: vec![0.0, 1e9],
            seeds: vec![42, 43],
            policies: vec![PolicySpec::Schedule {
                starts: vec![0, 12],
                deltas: vec![0.0, 1e9],
            }],
        });
        s
    }

    #[test]
    fn sweep_runs_every_arm_at_every_seed() {
        let report = run_sweep(&tiny_sweep_scenario()).unwrap();
        assert_eq!(report.arms.len(), 3);
        assert_eq!(report.seeds, vec![42, 43]);
        for arm in &report.arms {
            assert_eq!(arm.runs.len(), 2, "{}", arm.label);
            for run in &arm.runs {
                assert_eq!(run.iterations, 24);
                assert!(run.final_loss.is_finite());
            }
        }
        // δ=0 is the BSP-equivalent baseline arm, and reaches its own target.
        assert_eq!(report.baseline, 0);
        let bsp_arm = &report.arms[0];
        assert_eq!(bsp_arm.sync_steps.mean, 24.0);
        assert_eq!(bsp_arm.reached_target, 2);
        // The pure-local arm never synchronizes; the schedule arm synchronizes for
        // exactly the first 12 iterations.
        assert_eq!(report.arms[1].sync_steps.mean, 0.0);
        assert_eq!(report.arms[2].sync_steps.mean, 12.0);
        assert!(
            report.arms[2].label.contains("schedule"),
            "{}",
            report.arms[2].label
        );
    }

    #[test]
    fn fixed_arm_report_equals_a_plain_selsync_run() {
        // A sweep's fixed arm must be *exactly* the plain driver run — same label,
        // same bytes — so sweep results compose with every recorded regression.
        let scenario = tiny_sweep_scenario();
        let report = run_sweep(&scenario).unwrap();
        let mut cfg = scenario.train_config(AlgorithmSpec::selsync(0.0));
        cfg.seed = 42;
        let plain = algorithms::run(&cfg);
        assert_eq!(
            format!("{:?}", report.arms[0].runs[0]),
            format!("{plain:?}")
        );
    }

    #[test]
    fn render_and_json_are_deterministic() {
        let scenario = tiny_sweep_scenario();
        let a = run_sweep(&scenario).unwrap();
        let b = run_sweep(&scenario).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json(), b.to_json());
        assert!(a
            .render()
            .contains("# sweep: sweep-test (3 arms x 2 seeds)"));
        assert!(a.render().contains("## policy arms vs best fixed δ"));
        assert!(a.to_json().contains("\"reached_target\""));
    }

    #[test]
    fn quick_variant_scales_adaptive_round_budgets_and_preserves_arm_order() {
        // A full-length scenario whose adaptive arm has a warmup sized for the full
        // run: unscaled, the quick (60-iteration) variant could never leave warmup.
        let mut s = Scenario::base("quick-smoke", 4, 240);
        s.sweep = Some(SweepSpec {
            deltas: vec![0.0, 0.3],
            seeds: vec![42, 43, 44],
            policies: vec![
                PolicySpec::Schedule {
                    starts: vec![0, 120],
                    deltas: vec![0.0, 0.5],
                },
                PolicySpec::Adaptive {
                    delta_explore: 0.0,
                    delta_exploit: 0.5,
                    factor: 0.15,
                    warmup: 160,
                    settle: 0.05,
                    patience: 40,
                    spike: 2.5,
                },
            ],
        });
        let quick = quick_variant(&s);
        let full_spec = s.sweep.as_ref().unwrap();
        let quick_spec = quick.sweep.as_ref().unwrap();

        // Arm ordering (and kinds) must survive the shrink 1:1, so quick-mode
        // comparisons line up with full-mode ones.
        assert_eq!(quick_spec.deltas, full_spec.deltas);
        assert_eq!(quick_spec.policies.len(), full_spec.policies.len());
        for (q, f) in quick_spec.policies.iter().zip(full_spec.policies.iter()) {
            assert_eq!(
                std::mem::discriminant(q),
                std::mem::discriminant(f),
                "policy arm kinds must keep their order"
            );
            q.validate().expect("scaled policy stays valid");
        }

        // The adaptive budgets are rescaled with the iteration range: the arm can arm
        // its settle detector (and therefore leave warmup) well inside the quick run.
        match &quick_spec.policies[1] {
            PolicySpec::Adaptive {
                warmup, patience, ..
            } => {
                assert_eq!(*warmup, 40, "160 of 240 iterations -> 40 of 60");
                assert_eq!(*patience, 10, "40 of 240 iterations -> 10 of 60");
                assert!(warmup + patience < quick.iterations);
            }
            other => panic!("expected the adaptive arm, got {other:?}"),
        }
        // Schedule stages keep their behavior under the same scaling.
        match &quick_spec.policies[0] {
            PolicySpec::Schedule { starts, .. } => assert_eq!(starts, &vec![0, 30]),
            other => panic!("expected the schedule arm, got {other:?}"),
        }
        // Seeds truncate (at most two in quick mode) but keep their prefix order.
        assert_eq!(quick_spec.seeds, vec![42, 43]);
    }

    #[test]
    fn default_grid_is_used_when_the_scenario_has_no_sweep_block() {
        let mut s = tiny_sweep_scenario();
        s.sweep = None;
        s.iterations = 8;
        s.eval_every = 4;
        let spec = SweepSpec::default_grid(s.seed);
        let report = run_sweep(&s).unwrap();
        assert_eq!(report.arms.len(), spec.arm_count());
        assert_eq!(report.seeds, spec.seeds);
    }
}

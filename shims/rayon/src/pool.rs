//! The deterministic long-lived worker pool.
//!
//! Design (see `docs/PERFORMANCE.md` at the workspace root):
//!
//! * Worker threads are spawned lazily, live for the whole process, and park on
//!   an MPSC job queue — no per-call thread spawn cost.
//! * [`parallel_for`] distributes task indices `0..tasks` with an atomic
//!   counter. The calling thread participates, so `SELSYNC_THREADS=1` runs the
//!   plain sequential loop with zero synchronisation.
//! * Borrowed closures are handed to workers as type-erased raw pointers; the
//!   caller blocks on a latch until every helper has finished, so the borrow
//!   outlives all uses (the classic scoped-pool argument).
//! * Determinism contract: tasks must write disjoint outputs and must not
//!   perform cross-task accumulation. Under that contract the result is a pure
//!   function of the input — independent of thread count and scheduling.
//! * A `parallel_for` issued from *inside* a pool worker runs sequentially
//!   (nested parallelism would deadlock a worker waiting on its own queue).

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock, RwLock, RwLockReadGuard};

/// Upper bound on pool size; far above any machine this workspace targets.
const MAX_THREADS: usize = 64;

/// Completion latch: the caller waits until every helper job has finished.
struct Latch {
    remaining: Mutex<usize>,
    cv: Condvar,
    /// Set when a helper job panicked; the caller re-panics after the wait so
    /// unwinding never races a borrowed closure.
    poisoned: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap();
        while *left > 0 {
            left = self.cv.wait(left).unwrap();
        }
    }
}

/// A type-erased borrowed closure plus its completion latch.
///
/// `data` points at a `F: Fn() + Sync` owned by the submitting stack frame;
/// `call` is the monomorphised trampoline that invokes it. The submitter blocks
/// on `latch` before its frame unwinds, which is what makes the raw pointer
/// sound to dereference from another thread.
struct Job {
    data: *const (),
    call: unsafe fn(*const ()),
    latch: Arc<Latch>,
}

// SAFETY: `data` is only dereferenced through `call` while the submitting
// thread blocks on `latch`, and the pointee is `Sync`.
unsafe impl Send for Job {}

unsafe fn trampoline<F: Fn() + Sync>(data: *const ()) {
    (*(data as *const F))()
}

struct Worker {
    sender: Mutex<mpsc::Sender<Job>>,
}

struct Pool {
    workers: RwLock<Vec<Worker>>,
    configured: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Runtime override of the effective thread count (0 = use the configured
/// value). Widening past `configured` is allowed — the pool grows lazily — so
/// determinism tests can exercise multi-thread schedules on small machines.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on pool worker threads; used to run nested parallelism sequentially.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

fn spawn_worker(workers: &mut Vec<Worker>) {
    let (tx, rx) = mpsc::channel::<Job>();
    std::thread::Builder::new()
        .name(format!("selsync-pool-{}", workers.len()))
        .spawn(move || {
            IN_POOL.with(|f| f.set(true));
            while let Ok(job) = rx.recv() {
                let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data) }));
                if result.is_err() {
                    job.latch.poisoned.store(true, Ordering::Release);
                }
                job.latch.count_down();
            }
        })
        .expect("failed to spawn selsync pool worker");
    workers.push(Worker {
        sender: Mutex::new(tx),
    });
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        workers: RwLock::new(Vec::new()),
        configured: configured_threads(),
    })
}

/// Read guard over at least `n` live workers (growing the pool if needed).
fn workers_for(n: usize) -> RwLockReadGuard<'static, Vec<Worker>> {
    let p = pool();
    {
        let guard = p.workers.read().unwrap();
        if guard.len() >= n {
            return guard;
        }
    }
    {
        let mut guard = p.workers.write().unwrap();
        while guard.len() < n {
            spawn_worker(&mut guard);
        }
    }
    p.workers.read().unwrap()
}

/// Thread count from the environment: `SELSYNC_THREADS` if set and >= 1,
/// otherwise `available_parallelism`, clamped to [`MAX_THREADS`].
pub fn configured_threads() -> usize {
    std::env::var("SELSYNC_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, MAX_THREADS)
}

/// The effective thread count for calls issued right now.
pub fn current_num_threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => pool().configured,
        n => n.min(MAX_THREADS),
    }
}

/// Run `f` with the effective thread count forced to `n`, restoring the
/// previous setting afterwards. Intended for determinism tests and benchmarks.
///
/// The override is process-global; concurrent callers may observe each other's
/// setting. That is harmless by construction — the pool's determinism contract
/// makes every result independent of the effective thread count.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let previous = OVERRIDE.swap(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(previous);
    f()
}

/// Execute `f(i)` for every `i in 0..tasks`, spread across the pool, and block
/// until all tasks are done. Each index is executed exactly once.
///
/// Tasks must write disjoint outputs (no cross-task reduction); under that
/// contract the result is bit-identical for every thread count.
pub fn parallel_for<F: Fn(usize) + Sync>(tasks: usize, f: F) {
    if tasks == 0 {
        return;
    }
    let threads = current_num_threads().min(tasks);
    if threads <= 1 || IN_POOL.with(|c| c.get()) {
        for i in 0..tasks {
            f(i);
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let runner = move || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= tasks {
            break;
        }
        f(i);
    };

    // Monomorphise the trampoline for `runner`'s unnameable closure type.
    fn trampoline_of<F: Fn() + Sync>(_: &F) -> unsafe fn(*const ()) {
        trampoline::<F>
    }
    let data = &runner as *const _ as *const ();
    let call = trampoline_of(&runner);

    let helpers = threads - 1;
    let latch = Arc::new(Latch::new(helpers));
    {
        let workers = workers_for(helpers);
        for worker in workers.iter().take(helpers) {
            let job = Job {
                data,
                call,
                latch: Arc::clone(&latch),
            };
            // A worker's receiver lives as long as the process; send cannot fail.
            worker
                .sender
                .lock()
                .unwrap()
                .send(job)
                .expect("pool worker vanished");
        }
    }

    // The caller participates, then waits for every helper before returning
    // (or unwinding), so `runner` outlives all uses. While executing its share
    // the caller counts as "in pool": a nested `parallel_for` issued from inside
    // one of its tasks runs sequentially, exactly as it would on a helper thread
    // — otherwise the nested dispatch would queue behind the busy helpers.
    let was_in_pool = IN_POOL.with(|c| c.replace(true));
    let mine = catch_unwind(AssertUnwindSafe(&runner));
    IN_POOL.with(|c| c.set(was_in_pool));
    latch.wait();
    if let Err(payload) = mine {
        resume_unwind(payload);
    }
    if latch.poisoned.load(Ordering::Acquire) {
        panic!("a selsync pool task panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn zero_tasks_is_a_no_op() {
        parallel_for(0, |_| panic!("must not run"));
    }

    #[test]
    fn single_task_runs_on_the_caller() {
        let hit = AtomicUsize::new(0);
        parallel_for(1, |i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn disjoint_writes_cover_every_slot() {
        let mut out = vec![0u64; 1000];
        // Scoped mutable access through an atomic view keeps this test simple.
        let slots: Vec<AtomicU64> = (0..out.len()).map(|_| AtomicU64::new(0)).collect();
        with_threads(8, || {
            parallel_for(slots.len(), |i| {
                slots[i].store(i as u64 + 1, Ordering::Relaxed);
            });
        });
        for (o, s) in out.iter_mut().zip(slots.iter()) {
            *o = s.load(Ordering::Relaxed);
        }
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                parallel_for(16, |i| {
                    if i == 7 {
                        panic!("boom");
                    }
                });
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn configured_threads_is_at_least_one() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn caller_tasks_run_nested_calls_sequentially() {
        // A nested parallel_for from inside a task must run inline on whichever
        // thread executes the task — including the caller — and cover every index.
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        with_threads(4, || {
            parallel_for(8, |outer| {
                parallel_for(8, |inner| {
                    hits[outer * 8 + inner].fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        // And the caller's in-pool flag is restored afterwards: a fresh top-level
        // call may parallelise again (it must still cover everything exactly once).
        let after = AtomicUsize::new(0);
        with_threads(4, || {
            parallel_for(16, |_| {
                after.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(after.load(Ordering::Relaxed), 16);
    }
}

//! A minimal, genuinely parallel slice-iterator surface.
//!
//! Only the combinators this workspace uses are provided: `par_chunks` /
//! `par_chunks_mut` producing a [`ParIter`], plus `zip`, `enumerate`,
//! `for_each` and `map_collect`. Items are materialised eagerly (chunk
//! descriptors are cheap — two words per chunk) and dispatched over
//! [`crate::pool::parallel_for`]; each item is processed exactly once, on an
//! arbitrary thread, which is deterministic as long as items write disjoint
//! outputs — exactly the rayon contract.

use crate::pool::parallel_for;

/// An eager collection of independent work items, processed in parallel.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Wrap pre-built items.
    pub fn from_items(items: Vec<I>) -> Self {
        ParIter { items }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Pair up with another parallel iterator (shorter side wins, as in rayon).
    pub fn zip<J: Send>(self, other: ParIter<J>) -> ParIter<(I, J)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Attach each item's index.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Consume every item in parallel. Each item is passed to `f` exactly once.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        let mut items = std::mem::ManuallyDrop::new(self.items);
        let base = SendPtr(items.as_mut_ptr());
        let n = items.len();
        // SAFETY: `parallel_for` visits each index exactly once, so every item
        // is moved out exactly once; the ManuallyDrop vec never drops them.
        parallel_for(n, |i| {
            let item = unsafe { std::ptr::read(base.get().add(i)) };
            f(item);
        });
        // Buffer memory (not the items) is released here.
        unsafe {
            items.set_len(0);
            std::mem::ManuallyDrop::drop(&mut items);
        }
    }

    /// Map every item in parallel, preserving order.
    pub fn map_collect<T: Send, F: Fn(I) -> T + Sync>(self, f: F) -> Vec<T> {
        let n = self.items.len();
        let mut out: Vec<Option<T>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let out_base = SendPtr(out.as_mut_ptr());
        let mut items = std::mem::ManuallyDrop::new(self.items);
        let base = SendPtr(items.as_mut_ptr());
        // SAFETY: disjoint reads and writes per index, each visited once.
        parallel_for(n, |i| {
            let item = unsafe { std::ptr::read(base.get().add(i)) };
            unsafe { *out_base.get().add(i) = Some(f(item)) };
        });
        unsafe {
            items.set_len(0);
            std::mem::ManuallyDrop::drop(&mut items);
        }
        out.into_iter().map(|x| x.expect("slot filled")).collect()
    }
}

/// Raw-pointer wrapper that may cross threads; all uses are index-disjoint.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the wrapper —
    /// and with it the `Send`/`Sync` guarantees — not the bare pointer.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Parallel chunking of shared slices.
pub trait ParallelSlice<T> {
    /// Parallel iterator over `chunk_size`-sized chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// Parallel chunking of mutable slices.
pub trait ParallelSliceMut<T> {
    /// Parallel iterator over `chunk_size`-sized mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::with_threads;

    #[test]
    fn map_collect_preserves_order() {
        let data: Vec<u32> = (0..100).collect();
        let doubled = with_threads(4, || {
            ParIter::from_items(data.clone()).map_collect(|x| x * 2)
        });
        assert_eq!(doubled, data.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_truncates_to_shorter_side() {
        let a = [1, 2, 3];
        let b = [10, 20];
        let pairs = a.par_chunks(1).zip(b.par_chunks(1));
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn for_each_drops_every_item_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let items: Vec<Counted> = (0..64).map(|_| Counted(Arc::clone(&drops))).collect();
        with_threads(4, || {
            ParIter::from_items(items).for_each(drop);
        });
        assert_eq!(drops.load(Ordering::Relaxed), 64);
    }
}

//! Offline stand-in for `rayon`: the `par_chunks`/`par_chunks_mut` entry points return
//! ordinary sequential iterators. Std's `Iterator` already provides the `zip`/`for_each`
//! combinators chained on them, so call sites compile unchanged; they simply run on one
//! thread. The matmul hot path stays correct and cache-friendly, just not parallel —
//! acceptable for an offline build, and trivially replaced when the real rayon is
//! available.

/// Drop-in `use rayon::prelude::*` surface.
pub mod prelude {
    /// Sequential `par_chunks` over shared slices.
    pub trait ParallelSlice<T> {
        /// Iterate over `chunk_size`-sized chunks (sequentially).
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Sequential `par_chunks_mut` over mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Iterate over `chunk_size`-sized mutable chunks (sequentially).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_match_chunks() {
        let data = [1, 2, 3, 4, 5];
        let collected: Vec<Vec<i32>> = data.par_chunks(2).map(|c| c.to_vec()).collect();
        assert_eq!(collected, vec![vec![1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn par_chunks_mut_zip_for_each() {
        let mut out = [0i32; 6];
        let src = [1i32, 2, 3, 4, 5, 6];
        out.par_chunks_mut(2)
            .zip(src.par_chunks(2))
            .for_each(|(o, s)| {
                for (a, b) in o.iter_mut().zip(s.iter()) {
                    *a = b * 10;
                }
            });
        assert_eq!(out, [10, 20, 30, 40, 50, 60]);
    }
}

//! Offline stand-in for `rayon`, now backed by a real worker pool.
//!
//! Unlike the original sequential shim, this crate runs work on long-lived OS
//! threads while keeping every result **bit-identical across thread counts**:
//!
//! * [`pool::parallel_for`] executes independent tasks (each writing disjoint
//!   output) across the pool; which thread runs which task is irrelevant to the
//!   result, so an atomic task counter is safe.
//! * Reductions must not be expressed as racing accumulations. Callers either
//!   keep them serial or combine fixed-size per-task partials in task order
//!   (see `selsync_tensor::par`), which makes the floating-point summation
//!   order a pure function of the input size — never of the thread count.
//!
//! The pool is configured once from `SELSYNC_THREADS` (default:
//! `available_parallelism`). Tests can widen or narrow the *effective* thread
//! count at runtime with [`pool::with_threads`]; the pool lazily grows its
//! worker set, so a 1-CPU machine can still genuinely exercise a 4-thread
//! schedule.
//!
//! The `prelude` keeps the `par_chunks`/`par_chunks_mut` + `zip`/`for_each`
//! surface of real rayon so call sites written against the registry crate
//! compile unchanged — but here they are actually parallel. (The workspace's
//! own kernels now use [`pool::parallel_for`] directly; the prelude exists for
//! drop-in fidelity and has no in-workspace production callers at present.)

pub mod iter;
pub mod pool;

/// Drop-in `use rayon::prelude::*` surface.
pub mod prelude {
    pub use crate::iter::{ParallelSlice, ParallelSliceMut};
}

/// Number of threads the pool will use for the current call context
/// (rayon-compatible name).
pub fn current_num_threads() -> usize {
    pool::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_chunks_match_chunks() {
        let data = [1, 2, 3, 4, 5];
        let collected: Vec<Vec<i32>> = data.par_chunks(2).map_collect(|c| c.to_vec());
        assert_eq!(collected, vec![vec![1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn par_chunks_mut_zip_for_each() {
        let mut out = [0i32; 6];
        let src = [1i32, 2, 3, 4, 5, 6];
        out.par_chunks_mut(2)
            .zip(src.par_chunks(2))
            .for_each(|(o, s)| {
                for (a, b) in o.iter_mut().zip(s.iter()) {
                    *a = b * 10;
                }
            });
        assert_eq!(out, [10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn parallel_for_runs_every_task_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        pool::with_threads(4, || {
            pool::parallel_for(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_parallel_for_degrades_gracefully() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let total = AtomicUsize::new(0);
        pool::with_threads(4, || {
            pool::parallel_for(8, |_| {
                pool::parallel_for(8, |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn with_threads_restores_the_previous_setting() {
        let before = current_num_threads();
        let inside = pool::with_threads(3, current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), before);
    }
}

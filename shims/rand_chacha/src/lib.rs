//! Offline `ChaCha8Rng`: a real 8-round ChaCha keystream generator implementing the
//! local `rand` shim's `RngCore`/`SeedableRng`. The keystream is a pure function of the
//! 64-bit seed (expanded to a 256-bit key with splitmix64), so runs are bit-for-bit
//! reproducible — the only property the workspace relies on.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Deterministic ChaCha with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    cursor: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    /// Absolute keystream position: 32-bit words consumed since seeding.
    pub fn word_pos(&self) -> u64 {
        if self.cursor >= 16 {
            self.counter.wrapping_mul(16)
        } else {
            (self.counter - 1).wrapping_mul(16) + self.cursor as u64
        }
    }

    /// Jump to an absolute keystream position (32-bit words since seeding), in O(1).
    ///
    /// ChaCha generates its keystream from a block counter, so any position is
    /// directly addressable: the next `next_u32` after `set_word_pos(p)` returns
    /// exactly the word a fresh generator would return as its `p`-th draw. This is
    /// what lets independent model replicas reproduce a *shared* sequential
    /// dropout-mask stream without replaying it.
    pub fn set_word_pos(&mut self, pos: u64) {
        self.counter = pos / 16;
        self.cursor = 16;
        let rem = (pos % 16) as usize;
        if rem != 0 {
            self.refill();
            self.cursor = rem;
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = splitmix64(&mut s);
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn set_word_pos_matches_linear_replay() {
        // Seeking to any position yields the same stream a fresh generator reaches by
        // drawing linearly — including positions inside and across block boundaries.
        let reference: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(99);
            (0..64).map(|_| r.next_u32()).collect()
        };
        for &pos in &[0u64, 1, 7, 15, 16, 17, 31, 32, 45, 63] {
            let mut r = ChaCha8Rng::seed_from_u64(99);
            r.set_word_pos(pos);
            assert_eq!(r.next_u32(), reference[pos as usize], "seek to {pos}");
        }
        // Backward seeks work too (the position is absolute, not relative).
        let mut r = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..40 {
            r.next_u32();
        }
        r.set_word_pos(3);
        assert_eq!(r.next_u32(), reference[3]);
    }

    #[test]
    fn word_pos_tracks_consumption() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(r.word_pos(), 0);
        for expect in 1..=40u64 {
            r.next_u32();
            assert_eq!(r.word_pos(), expect);
        }
        r.set_word_pos(100);
        assert_eq!(r.word_pos(), 100);
    }

    #[test]
    fn stream_looks_balanced() {
        // Crude sanity check: bit population over 4096 words near 50%.
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..4096).map(|_| r.next_u32().count_ones()).sum();
        let frac = ones as f64 / (4096.0 * 32.0);
        assert!((frac - 0.5).abs() < 0.02, "bit fraction {frac}");
    }
}

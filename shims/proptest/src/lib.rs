//! Offline mini stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, numeric range strategies, and
//! `proptest::collection::vec` (with a fixed size or a size range). Inputs are drawn
//! from a deterministic splitmix64 stream keyed on the test name and case index, so
//! failures are reproducible run-to-run. No shrinking: a failing case reports its inputs
//! through the ordinary assert message.

use std::ops::Range;

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic input stream (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG keyed on the property name and case index.
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;
    /// Draw one input.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Number of elements a [`VecStrategy`] draws: fixed or ranged.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of elements from an inner strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `vec(element_strategy, size)` where `size` is a `usize` or a `Range<usize>`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything the `proptest!` call sites import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Assert within a property (no shrinking; behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property (behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The `proptest!` block: an optional config header followed by test functions whose
/// arguments are drawn from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(x in 3usize..10, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_are_respected(
            v in crate::collection::vec(0.0f32..5.0, 2..6),
            w in crate::collection::vec(crate::collection::vec(0u64..10, 3), 1..4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(!w.is_empty() && w.len() < 4);
            for inner in &w {
                prop_assert_eq!(inner.len(), 3);
            }
        }
    }

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let a = crate::TestRng::deterministic("p", 3).next_u64();
        let b = crate::TestRng::deterministic("p", 3).next_u64();
        let c = crate::TestRng::deterministic("p", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

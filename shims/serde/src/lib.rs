//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive macros so that
//! `use serde::{Deserialize, Serialize};` + `#[derive(Serialize, Deserialize)]`
//! compile unchanged. No serialization machinery is provided (nothing in the
//! workspace uses it); the scenario subsystem carries its own TOML codec.

pub use serde_derive::{Deserialize, Serialize};

//! Offline minimal stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses — `RngCore`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension with `gen`/`gen_range` —
//! with the same statistical conventions (floats uniform in `[0, 1)` built from the
//! high mantissa bits). Determinism, not numeric compatibility with upstream rand,
//! is the contract: every consumer seeds explicitly through `selsync_tensor::rng`.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`Self::next_u64`] by default).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Constructors for deterministic generators.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full value domain (for [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly (for [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-domain inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32, u16, u8);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

/// The user-facing sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw one value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // A weak LCG is plenty for testing the adapter plumbing.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: f32 = r.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&x));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = Counter(3);
        for _ in 0..1000 {
            let x = r.gen_range(5usize..9);
            assert!((5..9).contains(&x));
            let y = r.gen_range(0usize..=3);
            assert!(y <= 3);
        }
    }
}

//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace is built offline, so the real serde cannot be vendored. No code in the
//! workspace calls serde's serialization machinery — the derives on config/report types
//! are forward-looking annotations — so expanding them to nothing is sufficient. The
//! `attributes(serde)` declaration keeps `#[serde(...)]` field attributes legal should
//! any be added later.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for `parking_lot`, implemented over `std::sync`.
//!
//! Provides the panic-free-guard API shape (`lock()`/`read()`/`write()` return guards
//! directly, `Condvar::wait` takes `&mut MutexGuard`) that the communication substrate
//! uses. Lock poisoning is transparently ignored, matching parking_lot semantics: a
//! panicking worker thread already propagates its panic through `run_cluster`.

use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutex whose `lock` returns the guard directly.
pub struct Mutex<T>(sync::Mutex<T>);

/// Guard for [`Mutex`]. The inner option is only `None` transiently inside
/// [`Condvar::wait`].
pub struct MutexGuard<'a, T>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }
}

impl<'a, T> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard stolen during wait")
    }
}

impl<'a, T> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard stolen during wait")
    }
}

/// Condition variable compatible with [`MutexGuard`].
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's lock, block, and reacquire it.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Reader-writer lock whose `read`/`write` return guards directly.
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut guard = lock.lock();
            while !*guard {
                cv.wait(&mut guard);
            }
            *guard
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(t.join().unwrap());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
